//! Rule self-tests: every rule fires on its failing fixture and stays
//! silent on its passing one, the `oasis-lint` binary reflects that in
//! its exit status, and deliberately breaking a checked invariant in the
//! *real* tree makes the corresponding rule fire.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use oasis_lint::{find_root, Diagnostic, Workspace};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn lint_fixtures(rels: &[&str]) -> Vec<Diagnostic> {
    let paths: Vec<PathBuf> = rels.iter().map(|r| fixture(r)).collect();
    Workspace::from_fixtures(&paths)
        .expect("fixture files load")
        .lint()
}

fn fires(diags: &[Diagnostic], rule: &str) -> bool {
    diags.iter().any(|d| d.rule == rule)
}

#[test]
fn panic_free_fixtures() {
    let fail = lint_fixtures(&["panic_free/fail.rs"]);
    assert!(fires(&fail, "panic-free-serving"), "{fail:?}");
    assert!(
        fail.len() >= 3,
        "the unwrap, the panic!, and the indexing should all fire: {fail:?}"
    );
    let pass = lint_fixtures(&["panic_free/pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn live_ingestion_mutation_paths_have_fixture_pairs() {
    // Every mutation path of the layered live index — the WAL, the delta
    // index, the layered executor, and the background compactor — is
    // serving-path code: the rule must fire on each failing fixture and
    // stay silent on its panic-free twin.
    for (fail, pass) in [
        ("panic_free_live/wal_fail.rs", "panic_free_live/wal_pass.rs"),
        (
            "panic_free_live/delta_fail.rs",
            "panic_free_live/delta_pass.rs",
        ),
        (
            "panic_free_live/layered_fail.rs",
            "panic_free_live/layered_pass.rs",
        ),
        (
            "panic_free_live/compactor_fail.rs",
            "panic_free_live/compactor_pass.rs",
        ),
    ] {
        let diags = lint_fixtures(&[fail]);
        assert!(fires(&diags, "panic-free-serving"), "{fail}: {diags:?}");
        let diags = lint_fixtures(&[pass]);
        assert!(diags.is_empty(), "{pass}: {diags:?}");
    }
}

#[test]
fn front_door_paths_have_fixture_pairs() {
    // The event-driven front door — the reactor the loop parks on, the
    // per-connection state machine parsing peer-controlled bytes, and
    // the result cache on every dispatch — is serving-path code: the
    // rule must fire on each failing fixture and stay silent on its
    // panic-free twin.
    for (fail, pass) in [
        (
            "panic_free_front_door/reactor_fail.rs",
            "panic_free_front_door/reactor_pass.rs",
        ),
        (
            "panic_free_front_door/conn_fail.rs",
            "panic_free_front_door/conn_pass.rs",
        ),
        (
            "panic_free_front_door/cache_fail.rs",
            "panic_free_front_door/cache_pass.rs",
        ),
    ] {
        let diags = lint_fixtures(&[fail]);
        assert!(fires(&diags, "panic-free-serving"), "{fail}: {diags:?}");
        let diags = lint_fixtures(&[pass]);
        assert!(diags.is_empty(), "{pass}: {diags:?}");
    }
    // The reactor fixture also holds a queue guard across a blocking
    // recv — lock discipline is checked on the new paths too.
    let diags = lint_fixtures(&["panic_free_front_door/reactor_fail.rs"]);
    assert!(fires(&diags, "guard-across-blocking"), "{diags:?}");
}

#[test]
fn observability_paths_have_fixture_pairs() {
    // The metrics registry runs on every served query — a panic while
    // recording a sample kills the daemon just like one in the frame
    // codec, so the obs crate is serving-path code: the rule must fire
    // on the failing fixture and stay silent on its panic-free twin.
    let fail = lint_fixtures(&["panic_free_obs/hist_fail.rs"]);
    assert!(fires(&fail, "panic-free-serving"), "{fail:?}");
    assert!(
        fail.len() >= 2,
        "the indexed bucket lookup and the quantile unwrap should both fire: {fail:?}"
    );
    let pass = lint_fixtures(&["panic_free_obs/hist_pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn guard_blocking_fixtures() {
    let fail = lint_fixtures(&["guard_blocking/fail.rs"]);
    assert!(fires(&fail, "guard-across-blocking"), "{fail:?}");
    assert!(
        fail.len() >= 2,
        "both the held guard and the chained acquisition should fire: {fail:?}"
    );
    let pass = lint_fixtures(&["guard_blocking/pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn protocol_drift_fixtures() {
    let fail = lint_fixtures(&["protocol_drift/fail.md"]);
    assert!(fires(&fail, "protocol-drift"), "{fail:?}");
    let pass = lint_fixtures(&["protocol_drift/pass.md"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn manifest_coverage_fixtures() {
    let fail = lint_fixtures(&["manifest_coverage/fail.rs"]);
    assert!(fires(&fail, "manifest-coverage"), "{fail:?}");
    assert!(
        fail.len() >= 2,
        "both the unrecorded section and the unswept pattern should fire: {fail:?}"
    );
    let pass = lint_fixtures(&["manifest_coverage/pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn allow_reason_fixtures() {
    let fail = lint_fixtures(&["allow_reason/fail.rs"]);
    assert!(fires(&fail, "allow-needs-reason"), "{fail:?}");
    assert!(
        fail.len() >= 3,
        "the bare allow, the reasonless escape, and the unknown rule should all fire: {fail:?}"
    );
    let pass = lint_fixtures(&["allow_reason/pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

#[test]
fn forbid_unsafe_fixtures() {
    let fail = lint_fixtures(&["forbid_unsafe/fail.rs"]);
    assert!(fires(&fail, "forbid-unsafe"), "{fail:?}");
    let pass = lint_fixtures(&["forbid_unsafe/pass.rs"]);
    assert!(pass.is_empty(), "{pass:?}");
}

/// The binary itself: exit 1 on every failing fixture, exit 0 on every
/// passing one.
#[test]
fn binary_exit_status_tracks_fixtures() {
    let bin = env!("CARGO_BIN_EXE_oasis-lint");
    let run = |rel: &str| {
        Command::new(bin)
            .arg(fixture(rel))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run oasis-lint")
            .code()
    };
    for fail in [
        "panic_free/fail.rs",
        "panic_free_live/wal_fail.rs",
        "panic_free_live/delta_fail.rs",
        "panic_free_live/layered_fail.rs",
        "panic_free_live/compactor_fail.rs",
        "panic_free_front_door/reactor_fail.rs",
        "panic_free_front_door/conn_fail.rs",
        "panic_free_front_door/cache_fail.rs",
        "panic_free_obs/hist_fail.rs",
        "guard_blocking/fail.rs",
        "protocol_drift/fail.md",
        "manifest_coverage/fail.rs",
        "allow_reason/fail.rs",
        "forbid_unsafe/fail.rs",
    ] {
        assert_eq!(run(fail), Some(1), "expected findings in {fail}");
    }
    for pass in [
        "panic_free/pass.rs",
        "panic_free_live/wal_pass.rs",
        "panic_free_live/delta_pass.rs",
        "panic_free_live/layered_pass.rs",
        "panic_free_live/compactor_pass.rs",
        "panic_free_front_door/reactor_pass.rs",
        "panic_free_front_door/conn_pass.rs",
        "panic_free_front_door/cache_pass.rs",
        "panic_free_obs/hist_pass.rs",
        "guard_blocking/pass.rs",
        "protocol_drift/pass.md",
        "manifest_coverage/pass.rs",
        "allow_reason/pass.rs",
        "forbid_unsafe/pass.rs",
    ] {
        assert_eq!(run(pass), Some(0), "expected a clean run on {pass}");
    }
}

// ---- break-the-invariant tests over the real tree -----------------------

fn real_tree() -> Workspace {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    Workspace::load(&root).expect("load workspace")
}

#[test]
fn the_real_tree_lints_clean() {
    let diags = real_tree().lint();
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn renumbering_a_documented_tag_fires_protocol_drift() {
    let mut ws = real_tree();
    let doc = ws
        .text_of("docs/PROTOCOL.md")
        .expect("doc loaded")
        .to_string();
    let broken = doc.replace("| 1    | Hello", "| 9    | Hello");
    assert_ne!(doc, broken, "the Hello row should exist to renumber");
    assert!(ws.patch("docs/PROTOCOL.md", broken));
    assert!(fires(&ws.lint(), "protocol-drift"));
}

#[test]
fn an_unwrap_in_the_net_server_fires_panic_free() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/net/src/server.rs")
        .expect("server source")
        .to_string();
    let broken = format!("{src}\nfn oops(v: &[u8]) -> u8 {{ v.first().copied().unwrap() }}\n");
    assert!(ws.patch("crates/net/src/server.rs", broken));
    assert!(fires(&ws.lint(), "panic-free-serving"));
}

#[test]
fn the_esa_backend_is_on_the_serving_path_list() {
    // The packed-ESA index serves loaded artifact bytes directly, so its
    // decoder and traversal sit on the serving path like the artifact
    // reader does: an injected unwrap (or a direct index) must fire.
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/suffix/src/esa.rs")
        .expect("esa source")
        .to_string();
    let broken = format!("{src}\nfn oops(v: &[u8]) -> u8 {{ v.first().copied().unwrap() }}\n");
    assert!(ws.patch("crates/suffix/src/esa.rs", broken));
    assert!(fires(&ws.lint(), "panic-free-serving"));

    let mut ws = real_tree();
    let indexed = format!("{src}\nfn oops2(v: &[u8]) -> u8 {{ v[0] }}\n");
    assert!(ws.patch("crates/suffix/src/esa.rs", indexed));
    assert!(fires(&ws.lint(), "panic-free-serving"));
}

#[test]
fn the_reactor_and_conn_are_on_the_serving_path_list() {
    // The event loop's reactor and connection state machine run inside
    // the daemon: an injected unwrap in either must fire, exactly like
    // one in server.rs.
    for path in ["crates/net/src/reactor.rs", "crates/net/src/conn.rs"] {
        let mut ws = real_tree();
        let src = ws.text_of(path).expect("source loaded").to_string();
        let broken = format!("{src}\nfn oops(v: &[u8]) -> u8 {{ v.first().copied().unwrap() }}\n");
        assert!(ws.patch(path, broken));
        assert!(fires(&ws.lint(), "panic-free-serving"), "{path}");
    }
}

#[test]
fn the_obs_crate_is_on_the_serving_path_list() {
    // The histogram registry and the trace carrier both execute inside
    // the daemon on every query: an injected unwrap (or a direct index)
    // in either must fire.
    for path in ["crates/obs/src/hist.rs", "crates/obs/src/trace.rs"] {
        let mut ws = real_tree();
        let src = ws.text_of(path).expect("source loaded").to_string();
        let broken = format!("{src}\nfn oops(v: &[u8]) -> u8 {{ v.first().copied().unwrap() }}\n");
        assert!(ws.patch(path, broken));
        assert!(fires(&ws.lint(), "panic-free-serving"), "{path}");

        let mut ws = real_tree();
        let src = ws.text_of(path).expect("source loaded").to_string();
        let indexed = format!("{src}\nfn oops2(v: &[u8]) -> u8 {{ v[0] }}\n");
        assert!(ws.patch(path, indexed));
        assert!(fires(&ws.lint(), "panic-free-serving"), "{path}");
    }
}

#[test]
fn the_result_cache_is_on_the_serving_path_list() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/engine/src/cache.rs")
        .expect("cache source")
        .to_string();
    let broken = format!("{src}\nfn oops(v: &[u8]) -> u8 {{ v[0] }}\n");
    assert!(ws.patch("crates/engine/src/cache.rs", broken));
    assert!(fires(&ws.lint(), "panic-free-serving"));
}

#[test]
fn a_guard_across_recv_fires_guard_blocking() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/engine/src/serving.rs")
        .expect("serving source")
        .to_string();
    let broken = format!(
        "{src}\nfn oops(m: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) -> u32 {{\n    let g = m.lock();\n    let v = rx.recv();\n    drop(g);\n    match v {{ Ok(v) => v, Err(_) => 0 }}\n}}\n"
    );
    assert!(ws.patch("crates/engine/src/serving.rs", broken));
    assert!(fires(&ws.lint(), "guard-across-blocking"));
}

#[test]
fn dropping_a_gc_pattern_fires_manifest_coverage() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/storage/src/artifact.rs")
        .expect("artifact source")
        .to_string();
    let broken = src.replace("ends_with(\".oasis\")", "ends_with(\".bak\")");
    assert_ne!(src, broken, "the shard sweep pattern should exist to drop");
    assert!(ws.patch("crates/storage/src/artifact.rs", broken));
    assert!(fires(&ws.lint(), "manifest-coverage"));
}

#[test]
fn a_bare_allow_fires_allow_needs_reason() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/core/src/expand.rs")
        .expect("expand source")
        .to_string();
    let broken = format!("{src}\n#[allow(dead_code)]\nfn oops() {{}}\n");
    assert!(ws.patch("crates/core/src/expand.rs", broken));
    assert!(fires(&ws.lint(), "allow-needs-reason"));
}

#[test]
fn stripping_the_forbid_attribute_fires_forbid_unsafe() {
    let mut ws = real_tree();
    let src = ws
        .text_of("crates/core/src/lib.rs")
        .expect("core lib root")
        .to_string();
    let broken = src.replace("#![forbid(unsafe_code)]\n", "");
    assert_ne!(src, broken, "the attribute should exist to strip");
    assert!(ws.patch("crates/core/src/lib.rs", broken));
    assert!(fires(&ws.lint(), "forbid-unsafe"));
}
