//! Lexer property tests: the lexer is total (never panics, keeps line
//! numbers sane on arbitrary byte soup) and tracks string/comment state
//! exactly across randomized interleavings of tricky fragments.

use oasis_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Self-delimiting fragments with their expected token kinds. Each ends
/// cleanly (line comments carry their own newline), so any concatenation
/// with single-space separators must lex to the concatenated kinds — if
/// the lexer ever mis-tracks a string or comment boundary, a following
/// fragment lexes wrong and the comparison fails.
const FRAGMENTS: &[(&str, &[TokenKind])] = &[
    ("\"a \\\" b\"", &[TokenKind::Str]),
    ("'x'", &[TokenKind::Char]),
    ("'\\n'", &[TokenKind::Char]),
    ("'lt", &[TokenKind::Lifetime]),
    ("// to end of line\n", &[TokenKind::LineComment]),
    ("/* block /* nested */ done */", &[TokenKind::BlockComment]),
    ("r#\"raw \" quote\"#", &[TokenKind::Str]),
    ("b\"bytes\"", &[TokenKind::Str]),
    ("ident_9", &[TokenKind::Ident]),
    ("0xFF_u8", &[TokenKind::Number]),
    ("->", &[TokenKind::Punct, TokenKind::Punct]),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&text);
        let line_count = text.split('\n').count() as u32;
        for t in &tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count);
            prop_assert!(!t.text.is_empty());
        }
        for w in tokens.windows(2) {
            prop_assert!(w[1].line >= w[0].line, "line numbers went backwards");
        }
    }

    #[test]
    fn lexer_tracks_string_and_comment_state(
        seeds in prop::collection::vec(0usize..FRAGMENTS.len(), 1..12)
    ) {
        let mut src = String::new();
        let mut expected: Vec<TokenKind> = Vec::new();
        for &s in &seeds {
            let (frag, kinds) = FRAGMENTS[s];
            src.push_str(frag);
            src.push(' ');
            expected.extend_from_slice(kinds);
        }
        let got: Vec<TokenKind> = lex(&src).into_iter().map(|t| t.kind).collect();
        prop_assert_eq!(got, expected, "source: {src:?}");
    }
}
