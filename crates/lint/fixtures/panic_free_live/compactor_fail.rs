//@ mount: crates/engine/src/compactor.rs
// Background compaction runs on a live daemon thread; a panic there
// aborts the fold after the merged artifact may already be on disk.

fn first_shard_backend(backends: &[&'static str]) -> &'static str {
    backends[0]
}
