//@ mount: crates/engine/src/delta.rs
// The delta index sits between the WAL and every live snapshot; a panic
// here takes down the serving daemon with appended sequences only half
// applied. The expect and the indexing must fire.

fn last_record_name(names: &[String]) -> &str {
    let last = names.last().expect("delta is never empty");
    if last.is_empty() {
        return &names[0];
    }
    last
}
