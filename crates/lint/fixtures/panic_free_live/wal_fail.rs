//@ mount: crates/storage/src/wal.rs
// The write-ahead log is a mutation path on the live-serving daemon: a
// panic while appending loses the durability guarantee mid-record. A
// checksum unwrap and direct header indexing must both fire.

fn decode_header(buf: &[u8]) -> (u64, u8) {
    let seq = u64::from_le_bytes(buf[..8].try_into().unwrap());
    (seq, buf[8])
}
