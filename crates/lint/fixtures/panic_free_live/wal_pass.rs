//@ mount: crates/storage/src/wal.rs
// The same WAL decoder, panic-free: a torn or short record is a clean
// `None` (the replay treats it as the torn tail), never a panic.

fn decode_header(buf: &[u8]) -> Option<(u64, u8)> {
    let seq_bytes: [u8; 8] = buf.get(..8)?.try_into().ok()?;
    let kind = buf.get(8).copied()?;
    Some((u64::from_le_bytes(seq_bytes), kind))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert!(super::decode_header(&[0; 9]).is_some());
    }
}
