//@ mount: crates/engine/src/layered.rs
// The layered live index is the append/query hot path: a poisoned-lock
// unwrap here turns one worker panic into a dead daemon.

fn snapshot_len(state: &std::sync::Mutex<Vec<u32>>) -> usize {
    state.lock().unwrap().len()
}
