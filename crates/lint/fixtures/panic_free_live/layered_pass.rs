//@ mount: crates/engine/src/layered.rs
// The same lock, panic-free: poison is recovered, not propagated — the
// protected state is a position index that stays valid across a
// panicked writer.

fn snapshot_len(state: &std::sync::Mutex<Vec<u32>>) -> usize {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}
