//@ mount: crates/engine/src/compactor.rs
// The same lookup, panic-free: a missing shard table falls back to the
// default backend instead of indexing blind.

fn first_shard_backend(backends: &[&'static str]) -> &'static str {
    backends.first().copied().unwrap_or("tree")
}
