//@ mount: crates/engine/src/delta.rs
// The same lookup, panic-free: an empty delta is a visible `None`.

fn last_record_name(names: &[String]) -> Option<&str> {
    let last = names.last()?;
    if last.is_empty() {
        return names.first().map(String::as_str);
    }
    Some(last)
}
