//@ mount: crates/net/src/frame.rs
// A miniature wire module the protocol-drift doc fixtures cross-check
// against: two frame tags, two error codes, a version constant.

pub const PROTOCOL_VERSION: u32 = 1;

const TY_HELLO: u8 = 1;
const TY_SEARCH: u8 = 2;

pub enum Frame {
    Hello,
    Search,
}

pub enum ErrorCode {
    Busy,
    Internal,
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello => TY_HELLO,
            Frame::Search => TY_SEARCH,
        }
    }

    fn decode(kind: u8) -> Option<Frame> {
        match kind {
            TY_HELLO => Some(Frame::Hello),
            TY_SEARCH => Some(Frame::Search),
            _ => None,
        }
    }
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Internal => 2,
        }
    }

    fn from_u16(code: u16) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::Busy),
            2 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}
