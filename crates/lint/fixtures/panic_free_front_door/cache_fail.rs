//@ mount: crates/engine/src/cache.rs
// The result cache sits on every search dispatch: an eviction unwrap or
// a direct index into the LRU order panics the serving loop. Both must
// fire.

use std::collections::VecDeque;

fn evict_oldest(order: &mut VecDeque<u64>) -> u64 {
    order.pop_front().unwrap()
}

fn peek_newest(order: &VecDeque<u64>) -> u64 {
    order[order.len() - 1]
}
