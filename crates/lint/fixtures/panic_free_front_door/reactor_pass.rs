//@ mount: crates/net/src/reactor.rs
// The same operations with the daemon's discipline: a poisoned queue
// degrades instead of panicking, and nothing blocks while the queue
// guard is held.

use std::sync::Mutex;

fn drain_first(queue: &Mutex<Vec<u64>>) -> Option<u64> {
    let tokens = queue.lock().ok()?;
    tokens.first().copied()
}

fn wait_then_lock(queue: &Mutex<Vec<u64>>, rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    let v = rx.recv().unwrap_or(0);
    if let Ok(mut tokens) = queue.lock() {
        tokens.push(v);
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let queue = std::sync::Mutex::new(vec![7u64]);
        assert_eq!(super::drain_first(&queue).unwrap(), 7);
    }
}
