//@ mount: crates/net/src/conn.rs
// The same header parse, total: a short buffer is `None` — the bytes
// simply have not arrived yet — never a panic.

fn frame_len(buf: &[u8]) -> Option<usize> {
    let len_bytes: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(len_bytes) as usize + 5)
}

fn frame_type(buf: &[u8]) -> Option<u8> {
    buf.get(4).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::frame_len(&[1, 0, 0, 0, 9]).unwrap(), 6);
    }
}
