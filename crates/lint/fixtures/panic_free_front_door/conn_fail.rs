//@ mount: crates/net/src/conn.rs
// The connection state machine parses frames out of a byte buffer a
// remote peer controls: header indexing and length unwraps are exactly
// the panics a malformed peer could trigger. Both must fire.

fn frame_len(buf: &[u8]) -> usize {
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    len as usize + 5
}

fn frame_type(buf: &[u8]) -> u8 {
    buf[4]
}
