//@ mount: crates/net/src/reactor.rs
// The reactor is the loop every connection lives on: a panic here kills
// the daemon, and a guard held across a blocking wait stalls every
// socket at once. The lock unwrap, the direct index, and the held guard
// must all fire.

use std::sync::Mutex;

fn drain_first(queue: &Mutex<Vec<u64>>) -> u64 {
    let tokens = queue.lock().unwrap();
    tokens[0]
}

fn wait_holding_queue(queue: &Mutex<Vec<u64>>, rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    let guard = queue.lock();
    let v = rx.recv();
    drop(guard);
    match v {
        Ok(v) => v,
        Err(_) => drain_first(queue),
    }
}
