//@ mount: crates/engine/src/cache.rs
// The same LRU bookkeeping, total: an empty order is the caller's
// signal that there is nothing to evict.

use std::collections::VecDeque;

fn evict_oldest(order: &mut VecDeque<u64>) -> Option<u64> {
    order.pop_front()
}

fn peek_newest(order: &VecDeque<u64>) -> Option<u64> {
    order.back().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let mut order: std::collections::VecDeque<u64> = [3].into_iter().collect();
        assert_eq!(super::evict_oldest(&mut order).unwrap(), 3);
    }
}
