//@ mount: crates/storage/src/artifact.rs
// Broken on two counts: the shard section never lands in the manifest,
// and the collector does not recognize the shard naming pattern — an
// orphaned shard image would survive every sweep.

const MANIFEST_FILE: &str = "MANIFEST";

struct SectionMeta {
    file: String,
}

fn write_atomic(_dir: &str, _name: &str, _bytes: &[u8]) {}

fn write_index_artifact(dir: &str, checksum: u64) -> Vec<SectionMeta> {
    let db_name = format!("db-{checksum:016x}.oasisdb");
    write_atomic(dir, &db_name, b"db");
    let shard_name = format!("shard-{checksum:016x}.oasis");
    write_atomic(dir, &shard_name, b"shard");
    let sections = vec![SectionMeta { file: db_name }];
    write_atomic(dir, MANIFEST_FILE, b"manifest");
    sections
}

fn collect_garbage(name: &str) -> bool {
    name.starts_with("db-") && name.ends_with(".oasisdb")
}
