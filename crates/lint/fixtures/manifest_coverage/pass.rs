//@ mount: crates/storage/src/artifact.rs
// A miniature artifact writer: every section template is recorded in
// the manifest, the manifest itself is written last, and the collector
// recognizes both section naming patterns.

const MANIFEST_FILE: &str = "MANIFEST";

struct SectionMeta {
    file: String,
}

fn write_atomic(_dir: &str, _name: &str, _bytes: &[u8]) {}

fn write_index_artifact(dir: &str, checksum: u64) -> Vec<SectionMeta> {
    let db_name = format!("db-{checksum:016x}.oasisdb");
    write_atomic(dir, &db_name, b"db");
    let shard_name = format!("shard-{checksum:016x}.oasis");
    write_atomic(dir, &shard_name, b"shard");
    let sections = vec![
        SectionMeta { file: db_name },
        SectionMeta { file: shard_name },
    ];
    write_atomic(dir, MANIFEST_FILE, b"manifest");
    sections
}

fn collect_garbage(name: &str) -> bool {
    (name.starts_with("db-") && name.ends_with(".oasisdb"))
        || (name.starts_with("shard-") && name.ends_with(".oasis"))
}
