//@ mount: crates/fixture/src/lib.rs
//@ lib-root
//! A crate root missing `#![forbid(unsafe_code)]`.
