//@ mount: crates/fixture/src/lib.rs
//@ lib-root
#![forbid(unsafe_code)]
//! A crate root that pins the no-unsafe guarantee.
