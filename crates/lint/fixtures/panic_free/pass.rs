//@ mount: crates/net/src/server.rs
// The same serving-path module, panic-free: checked access, a justified
// escape, and test-only unwraps (which the rule ignores).

fn handle(frame: &[u8]) -> Option<u8> {
    let kind = frame.first()?;
    if *kind > 3 {
        return None;
    }
    frame.get(1).copied()
}

fn bounded(frame: &[u8]) -> u8 {
    if frame.len() > 2 {
        // oasis-lint: allow(panic-free-serving) — the length check above bounds the index
        frame[2]
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!([7u8].first().copied().unwrap(), 7);
    }
}
