//@ mount: crates/net/src/server.rs
// A serving-path module that panics three ways: an unwrap, a panic!
// macro, and direct slice indexing. The rule must flag all of them.

fn handle(frame: &[u8]) -> u8 {
    let kind = frame.first().unwrap();
    if *kind > 3 {
        panic!("unknown frame kind");
    }
    frame[1]
}
