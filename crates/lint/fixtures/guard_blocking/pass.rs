//@ mount: crates/engine/src/pool.rs
// Guard discipline the rule accepts: recv before locking, scoped
// guards, an explicit drop, and a condvar wait that consumes the guard.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex};

fn drain(queue: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let next = rx.recv().unwrap();
    let mut held = queue.lock().unwrap();
    held.push(next);
}

fn scoped(queue: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    {
        let mut held = queue.lock().unwrap();
        held.push(1);
    }
    let _ = rx.recv();
}

fn dropped(queue: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let mut held = queue.lock().unwrap();
    held.push(1);
    drop(held);
    let _ = rx.recv();
}

fn waits(ready: &Mutex<bool>, cv: &Condvar) {
    let mut flag = ready.lock().unwrap();
    while !*flag {
        flag = cv.wait(flag).unwrap();
    }
}
