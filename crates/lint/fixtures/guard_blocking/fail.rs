//@ mount: crates/engine/src/pool.rs
// Holds a mutex guard across a channel recv — the catalog/engine
// deadlock shape — and chains an acquisition into a blocking call.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

fn drain(queue: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let mut held = queue.lock().unwrap();
    let next = rx.recv().unwrap();
    held.push(next);
}

fn chained(queue: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    queue.lock().unwrap().push(rx.recv().unwrap());
}
