//@ mount: crates/obs/src/hist.rs
// The metrics registry runs inside the serving loop: a panic while
// bucketing a latency sample kills the daemon mid-query. The indexed
// bucket lookup and the quantile unwrap must both fire.

const BUCKETS: usize = 1920;

fn bucket_count(counts: &[u64; BUCKETS], index: usize) -> u64 {
    counts[index]
}

fn quantile_bound(bounds: &[u64], index: usize) -> u64 {
    bounds.get(index).copied().unwrap()
}
