//@ mount: crates/obs/src/hist.rs
// The same lookups, total: an out-of-range bucket clamps to the
// overflow slot instead of panicking — a histogram may drop precision,
// never the process.

const BUCKETS: usize = 1920;

fn bucket_count(counts: &[u64; BUCKETS], index: usize) -> u64 {
    counts.get(index).copied().unwrap_or(0)
}

fn quantile_bound(bounds: &[u64], index: usize) -> u64 {
    match bounds.get(index) {
        Some(b) => *b,
        None => bounds.last().copied().unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::quantile_bound(&[7], 0), 7);
    }
}
