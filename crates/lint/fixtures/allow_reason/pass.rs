//@ mount: crates/core/src/scratch.rs
// Every allow carries its justification.

// Kept unreferenced on purpose: the fixture exercises the attribute.
#[allow(dead_code)]
fn justified_allow() {}

fn checked(v: &[u8]) -> u8 {
    // oasis-lint: allow(panic-free-serving) — not a serving path; kept as an escape-syntax example
    v.first().copied().unwrap_or(0)
}
