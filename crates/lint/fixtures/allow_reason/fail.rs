//@ mount: crates/core/src/scratch.rs
// Three violations: a bare attribute with no justification, an inline
// escape with no reason text, and an escape naming an unknown rule.

#[allow(dead_code)]
fn bare_allow() {}

// oasis-lint: allow(panic-free-serving)
fn escape_without_reason() {}

// oasis-lint: allow(no-such-rule) — the rule name is wrong
fn unknown_rule() {}
