//! Diagnostics: the `file:line: [rule] message` records every rule emits,
//! with human and machine (`--json`) renderings.

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (a name from [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// What is wrong and how to fix or escape it.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sort diagnostics into the stable reporting order: by file, then line,
/// then rule name.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render diagnostics as a JSON array (machine output for `--json`):
/// `[{"rule": …, "file": …, "line": …, "message": …}, …]`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\": \"");
        escape_json(d.rule, &mut out);
        out.push_str("\", \"file\": \"");
        escape_json(&d.file, &mut out);
        out.push_str("\", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"message\": \"");
        escape_json(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let diags = vec![Diagnostic::new("r", "a\"b.rs", 3, "say \\ \"hi\"\n")];
        let json = render_json(&diags);
        assert!(json.contains(r#""file": "a\"b.rs""#));
        assert!(json.contains(r#"\\ \"hi\"\n"#));
    }

    #[test]
    fn sorted_order() {
        let mut diags = vec![
            Diagnostic::new("b", "z.rs", 1, "m"),
            Diagnostic::new("a", "a.rs", 9, "m"),
            Diagnostic::new("a", "a.rs", 2, "m"),
        ];
        sort(&mut diags);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[2].file, "z.rs");
    }
}
