//! `oasis-lint` — the workspace invariant checker.
//!
//! The serving stack's correctness rests on invariants no one file can
//! see: the wire spec in `docs/PROTOCOL.md` must match the tag constants
//! in `crates/net`, every artifact section written must land in the
//! checksum manifest, and nothing on a serving path may panic. This
//! crate enforces those invariants as a dependency-free static-analysis
//! pass over the workspace's own sources: a small hand-rolled
//! [lexer] (comment-, string-, and `#[cfg(test)]`-aware — no
//! `syn`, no crates.io) feeding a [rule engine](rules) that emits
//! `file:line` [diagnostics](diag) with human and `--json` output.
//!
//! # Rules
//!
//! | rule | checks |
//! |------|--------|
//! | `panic-free-serving` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/raw indexing in serving-path modules |
//! | `guard-across-blocking` | no lock guard held across `wait`/`recv`/socket I/O in the same block |
//! | `protocol-drift` | `docs/PROTOCOL.md` tables ⇔ `crates/net/src/frame.rs` constants and match arms |
//! | `manifest-coverage` | every artifact section written is manifest-recorded and GC-recognized |
//! | `allow-needs-reason` | every `#[allow(…)]` and every inline escape carries a justification |
//! | `forbid-unsafe` | every crate root pins `#![forbid(unsafe_code)]` |
//!
//! # Escapes
//!
//! A finding is suppressed by an adjacent
//! `// oasis-lint: allow(rule-name) — reason` comment (same line or the
//! line above). The reason is mandatory; `allow-needs-reason` polices the
//! escapes themselves and cannot be escaped. See `docs/LINTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{render_json, Diagnostic};
pub use source::SourceFile;
pub use workspace::{find_root, Workspace};
