//! Workspace loading: gather the Rust sources and normative documents
//! the rules read, either from disk (the real tree) or from in-memory
//! `(path, text)` pairs (fixtures and break-the-invariant self-tests).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::rules;
use crate::source::SourceFile;

/// The sources a lint run sees.
pub struct Workspace {
    /// Rust sources, paths workspace-relative with `/` separators.
    pub files: Vec<SourceFile>,
    /// Non-Rust documents the rules cross-check (e.g. `docs/PROTOCOL.md`),
    /// as `(path, text)` pairs.
    pub docs: Vec<(String, String)>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`.
    pub lib_roots: Vec<String>,
}

impl Workspace {
    /// Build a workspace from in-memory sources. `docs` and `lib_roots`
    /// follow the same path conventions as [`Workspace::load`].
    pub fn from_sources(
        files: Vec<(String, String)>,
        docs: Vec<(String, String)>,
        lib_roots: Vec<String>,
    ) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(p, t)| SourceFile::new(p, t))
                .collect(),
            docs,
            lib_roots,
        }
    }

    /// Build a workspace from fixture files on disk. Fixtures declare
    /// where they mount via header directives — `//@ mount: <path>` in
    /// Rust files, `<!--@ mount: <path> -->` in documents — plus
    /// `//@ with: <sibling>` to pull in a companion file from the same
    /// directory and `//@ lib-root` to register the mount as a crate
    /// root. Without a `mount:` directive, documents mount at
    /// `docs/PROTOCOL.md` and Rust files under `crates/fixture/src/`.
    pub fn from_fixtures(paths: &[PathBuf]) -> io::Result<Workspace> {
        let mut queue: Vec<PathBuf> = paths.to_vec();
        let mut loaded: Vec<PathBuf> = Vec::new();
        let mut files = Vec::new();
        let mut docs = Vec::new();
        let mut lib_roots = Vec::new();
        let mut at = 0usize;
        while let Some(path) = queue.get(at).cloned() {
            at += 1;
            if loaded.contains(&path) {
                continue;
            }
            loaded.push(path.clone());
            let text = fs::read_to_string(&path)?;
            let is_doc = path.extension().is_some_and(|e| e == "md");
            let mut mount: Option<String> = None;
            let mut is_lib_root = false;
            for line in text.lines() {
                let l = line.trim();
                let Some(body) = l
                    .strip_prefix("//@")
                    .or_else(|| l.strip_prefix("<!--@").and_then(|r| r.strip_suffix("-->")))
                else {
                    continue;
                };
                let body = body.trim();
                if let Some(m) = body.strip_prefix("mount:") {
                    mount = Some(m.trim().to_string());
                } else if let Some(w) = body.strip_prefix("with:") {
                    let dir = path.parent().unwrap_or(Path::new("."));
                    queue.push(dir.join(w.trim()));
                } else if body == "lib-root" {
                    is_lib_root = true;
                }
            }
            let mount = mount.unwrap_or_else(|| {
                if is_doc {
                    "docs/PROTOCOL.md".to_string()
                } else {
                    let name = path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "fixture.rs".to_string());
                    format!("crates/fixture/src/{name}")
                }
            });
            if is_lib_root {
                lib_roots.push(mount.clone());
            }
            if mount.ends_with(".md") {
                docs.push((mount, text));
            } else {
                files.push(SourceFile::new(mount, text));
            }
        }
        Ok(Workspace {
            files,
            docs,
            lib_roots,
        })
    }

    /// Load the workspace rooted at `root` from disk: every `.rs` file
    /// under `crates/*/src` and the root `src/`, plus `docs/PROTOCOL.md`.
    /// Fixture corpora (`crates/*/fixtures`) are deliberately excluded —
    /// they exist to *fail* rules.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rel_files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut krates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            krates.sort();
            for krate in krates {
                let src = krate.join("src");
                if src.is_dir() {
                    walk_rs(&src, &mut rel_files)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            walk_rs(&root_src, &mut rel_files)?;
        }

        let mut files = Vec::new();
        for path in &rel_files {
            let text = fs::read_to_string(path)?;
            files.push(SourceFile::new(relative(root, path), text));
        }

        let mut docs = Vec::new();
        let protocol = root.join("docs").join("PROTOCOL.md");
        if protocol.is_file() {
            docs.push((relative(root, &protocol), fs::read_to_string(&protocol)?));
        }

        let mut lib_roots: Vec<String> = files
            .iter()
            .map(|f| f.path.clone())
            .filter(|p| {
                (p.starts_with("crates/") && p.ends_with("/src/lib.rs")) || p == "src/lib.rs"
            })
            .collect();
        lib_roots.sort();

        Ok(Workspace {
            files,
            docs,
            lib_roots,
        })
    }

    /// Run every rule; returns the surviving findings, sorted.
    pub fn lint(&self) -> Vec<Diagnostic> {
        rules::run_all(self)
    }

    /// Replace the text of the file or doc at `path` (suffix-matched),
    /// re-analysing it. Returns false if no such source exists. The
    /// break-the-invariant self-tests use this to corrupt one file of the
    /// real tree in memory and assert the right rule fires.
    pub fn patch(&mut self, path: &str, text: impl Into<String>) -> bool {
        let text = text.into();
        if let Some(f) = self
            .files
            .iter_mut()
            .find(|f| f.path == path || f.path.ends_with(path))
        {
            *f = SourceFile::new(f.path.clone(), text);
            return true;
        }
        if let Some(d) = self
            .docs
            .iter_mut()
            .find(|(p, _)| p == path || p.ends_with(path))
        {
            d.1 = text;
            return true;
        }
        false
    }

    /// A read handle on the text of the source at `path` (suffix-matched).
    pub fn text_of(&self, path: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|f| f.path == path || f.path.ends_with(path))
            .map(|f| f.text.as_str())
            .or_else(|| {
                self.docs
                    .iter()
                    .find(|(p, _)| p == path || p.ends_with(path))
                    .map(|(_, t)| t.as_str())
            })
    }
}

/// Recursively collect `.rs` files under `dir`, skipping fixture corpora.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Find the workspace root at or above `start`: the nearest directory
/// holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    for _ in 0..16 {
        let d = dir?;
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
