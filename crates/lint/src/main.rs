//! The `oasis-lint` binary: lint the workspace, print `file:line`
//! diagnostics (or `--json`), exit non-zero on findings.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use oasis_lint::{find_root, render_json, Workspace};

const USAGE: &str = "\
oasis-lint — workspace invariant checker

USAGE:
    oasis-lint [--workspace] [--root <DIR>] [--json]
    oasis-lint [--json] <FIXTURE>...

OPTIONS:
    --workspace    Lint the whole workspace (the default mode)
    --root <DIR>   Workspace root (default: auto-detected from the cwd)
    --json         Emit the findings as a JSON array on stdout
    -h, --help     Show this help
    <FIXTURE>...   Lint fixture files instead of the workspace; fixtures
                   declare their mount point via `//@ mount:` directives

EXIT STATUS:
    0  clean       1  findings       2  usage or I/O error
";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut fixtures: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("oasis-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => fixtures.push(PathBuf::from(other)),
            other => {
                eprintln!("oasis-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let ws = if fixtures.is_empty() {
        let root =
            match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "oasis-lint: could not find the workspace root (no Cargo.toml + crates/ \
                     above the cwd); pass --root"
                    );
                    return ExitCode::from(2);
                }
            };
        match Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!(
                    "oasis-lint: cannot load workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        match Workspace::from_fixtures(&fixtures) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("oasis-lint: cannot read fixtures: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let diags = ws.lint();

    if json {
        println!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        eprintln!(
            "oasis-lint: clean — {} files, {} rules",
            ws.files.len(),
            oasis_lint::rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("oasis-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
