//! The rule engine: each rule is a module with a `check` entry point;
//! [`run_all`] dispatches every rule over a workspace, then applies the
//! inline escapes and sorts the survivors.

use std::collections::HashMap;

use crate::diag::{sort, Diagnostic};
use crate::workspace::Workspace;

pub mod allow_reason;
pub mod forbid_unsafe;
pub mod guard_blocking;
pub mod manifest_coverage;
pub mod panic_free;
pub mod protocol_drift;

/// Every rule name, in reporting order. Escape comments may only name
/// rules from this list.
pub const RULES: &[&str] = &[
    panic_free::RULE,
    guard_blocking::RULE,
    protocol_drift::RULE,
    manifest_coverage::RULE,
    allow_reason::RULE,
    forbid_unsafe::RULE,
];

/// Serving-path modules: the files where a panic kills a live daemon or
/// corrupts an artifact load, so [`panic_free`] applies. Matched by
/// workspace-relative suffix.
pub const SERVING_PATHS: &[&str] = &[
    "crates/net/src/lib.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/server.rs",
    "crates/net/src/reactor.rs",
    "crates/net/src/conn.rs",
    "crates/net/src/client.rs",
    "crates/engine/src/lib.rs",
    "crates/engine/src/serving.rs",
    "crates/engine/src/cache.rs",
    "crates/engine/src/catalog.rs",
    "crates/engine/src/shard.rs",
    "crates/engine/src/persist.rs",
    "crates/engine/src/delta.rs",
    "crates/engine/src/layered.rs",
    "crates/engine/src/compactor.rs",
    "crates/storage/src/artifact.rs",
    "crates/storage/src/wal.rs",
    "crates/suffix/src/esa.rs",
    "crates/obs/src/lib.rs",
    "crates/obs/src/hist.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/slowlog.rs",
    "crates/obs/src/prom.rs",
];

/// True if `path` is one of the serving-path modules.
pub fn is_serving_path(path: &str) -> bool {
    SERVING_PATHS
        .iter()
        .any(|s| path == *s || path.ends_with(&format!("/{s}")))
}

/// Run every rule over `ws`, drop findings covered by an escape, and
/// return the rest sorted by file/line/rule.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &ws.files {
        if is_serving_path(&file.path) {
            panic_free::check(file, &mut diags);
        }
        guard_blocking::check(file, &mut diags);
        allow_reason::check(file, &mut diags);
        if file.path == "crates/storage/src/artifact.rs"
            || file.path.ends_with("/crates/storage/src/artifact.rs")
        {
            manifest_coverage::check(file, &mut diags);
        }
    }
    protocol_drift::check(ws, &mut diags);
    forbid_unsafe::check(ws, &mut diags);

    // Escapes: a finding on a line covered by an inline allow-escape is
    // suppressed — except [`allow_reason`] findings, which police the
    // escapes themselves and therefore cannot be escaped away.
    let by_path: HashMap<&str, &crate::source::SourceFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    diags.retain(|d| {
        if d.rule == allow_reason::RULE {
            return true;
        }
        match by_path.get(d.file.as_str()) {
            Some(f) => !f.allows(d.rule, d.line),
            None => true,
        }
    });
    sort(&mut diags);
    diags
}
