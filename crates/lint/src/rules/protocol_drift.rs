//! Rule `protocol-drift`: `docs/PROTOCOL.md` is the normative wire spec;
//! `crates/net/src/frame.rs` implements it. This rule parses the frame
//! catalogue and error-code tables out of the document and cross-checks
//! them against the `TY_*` tag constants, the `ErrorCode` conversion
//! match arms, and `PROTOCOL_VERSION` — in both directions, so neither
//! side can gain, lose, or renumber an entry without the other.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::lexer::{int_value, Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// This rule's name.
pub const RULE: &str = "protocol-drift";

const DOC_SUFFIX: &str = "docs/PROTOCOL.md";
const WIRE_SUFFIX: &str = "crates/net/src/frame.rs";

/// One table row or code-side entry: a number and a normalized name.
#[derive(Debug, Clone)]
struct Entry {
    line: u32,
    num: u64,
    name: String,
    /// Display name as written in its source.
    shown: String,
}

/// Cross-check the protocol document against the wire module.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let doc = ws
        .docs
        .iter()
        .find(|(p, _)| p == DOC_SUFFIX || p.ends_with(DOC_SUFFIX));
    let wire = ws
        .files
        .iter()
        .find(|f| f.path == WIRE_SUFFIX || f.path.ends_with(WIRE_SUFFIX));
    let (doc, wire) = match (doc, wire) {
        (Some(d), Some(w)) => (d, w),
        (None, Some(w)) => {
            diags.push(Diagnostic::new(
                RULE,
                &w.path,
                1,
                format!(
                    "`{WIRE_SUFFIX}` is present but the normative spec `{DOC_SUFFIX}` is missing"
                ),
            ));
            return;
        }
        (Some((p, _)), None) => {
            diags.push(Diagnostic::new(
                RULE,
                p,
                1,
                format!("`{DOC_SUFFIX}` is present but the wire module `{WIRE_SUFFIX}` is missing"),
            ));
            return;
        }
        (None, None) => return,
    };
    let (doc_path, doc_text) = doc;

    let (doc_frames, doc_errors, doc_version) = parse_doc(doc_text);
    if doc_frames.is_empty() {
        diags.push(Diagnostic::new(
            RULE,
            doc_path,
            1,
            "no frame rows found under the `Frame catalogue` heading",
        ));
    }
    if doc_errors.is_empty() {
        diags.push(Diagnostic::new(
            RULE,
            doc_path,
            1,
            "no error rows found under the `Error codes` heading",
        ));
    }

    let code = wire.code_indices();
    let ty_consts = tag_constants(wire, &code);
    let to_arms = error_arms_to(wire, &code);
    let from_arms = error_arms_from(wire, &code);
    let code_version = const_value(wire, &code, "PROTOCOL_VERSION");

    cross_check(
        diags,
        "frame",
        doc_path,
        &doc_frames,
        &wire.path,
        &ty_consts,
    );
    cross_check(
        diags,
        "error code",
        doc_path,
        &doc_errors,
        &wire.path,
        &to_arms,
    );

    // `from_u16` must be the exact inverse of `to_u16`.
    let to_pairs: BTreeMap<u64, &str> = to_arms.iter().map(|e| (e.num, e.name.as_str())).collect();
    let from_pairs: BTreeMap<u64, &str> =
        from_arms.iter().map(|e| (e.num, e.name.as_str())).collect();
    if !from_arms.is_empty() && to_pairs != from_pairs {
        let line = from_arms.first().map(|e| e.line).unwrap_or(1);
        diags.push(Diagnostic::new(
            RULE,
            &wire.path,
            line,
            "`ErrorCode::from_u16` is not the inverse of `to_u16`: the match arms disagree",
        ));
    }
    if from_arms.is_empty() {
        diags.push(Diagnostic::new(
            RULE,
            &wire.path,
            1,
            "could not find `fn from_u16` match arms mapping numbers back to `ErrorCode`",
        ));
    }

    // Every tag constant must appear beyond its definition — once in the
    // encode direction (`type_byte`) and once in the decode match.
    for e in &ty_consts {
        let uses = code
            .iter()
            .filter(|&&ti| !wire.in_test[ti] && wire.tokens[ti].is_ident(&e.shown))
            .count();
        if uses < 3 {
            diags.push(Diagnostic::new(
                RULE,
                &wire.path,
                e.line,
                format!(
                    "tag constant `{}` is referenced {} time(s); it must appear in \
                     both the encode (`type_byte`) and decode match arms",
                    e.shown,
                    uses.saturating_sub(1)
                ),
            ));
        }
    }

    // The document's `(version N)` title must match `PROTOCOL_VERSION`.
    match (doc_version, code_version) {
        (Some((dl, dv)), Some((_, cv))) if dv != cv => {
            diags.push(Diagnostic::new(
                RULE,
                doc_path,
                dl,
                format!("document says protocol version {dv} but `PROTOCOL_VERSION` is {cv}"),
            ));
        }
        (None, _) => diags.push(Diagnostic::new(
            RULE,
            doc_path,
            1,
            "document title carries no `(version N)` marker to check against `PROTOCOL_VERSION`",
        )),
        (_, None) => diags.push(Diagnostic::new(
            RULE,
            &wire.path,
            1,
            "could not find a literal `PROTOCOL_VERSION` constant",
        )),
        _ => {}
    }
}

/// Compare doc rows against code entries by normalized name, both ways.
fn cross_check(
    diags: &mut Vec<Diagnostic>,
    what: &str,
    doc_path: &str,
    doc: &[Entry],
    wire_path: &str,
    code: &[Entry],
) {
    for d in doc {
        match code.iter().find(|c| c.name == d.name) {
            None => diags.push(Diagnostic::new(
                RULE,
                doc_path,
                d.line,
                format!(
                    "{what} `{}` ({}) is documented but not implemented in `{wire_path}`",
                    d.shown, d.num
                ),
            )),
            Some(c) if c.num != d.num => diags.push(Diagnostic::new(
                RULE,
                doc_path,
                d.line,
                format!(
                    "{what} `{}` is {} in the document but `{}` = {} in `{wire_path}`",
                    d.shown, d.num, c.shown, c.num
                ),
            )),
            Some(_) => {}
        }
    }
    for c in code {
        if !doc.iter().any(|d| d.name == c.name) {
            diags.push(Diagnostic::new(
                RULE,
                wire_path,
                c.line,
                format!(
                    "{what} `{}` ({}) is implemented but undocumented in `{doc_path}`",
                    c.shown, c.num
                ),
            ));
        }
    }
    // Duplicate numbers on either side are drift even when names align.
    for side in [doc, code] {
        let mut seen: BTreeMap<u64, &Entry> = BTreeMap::new();
        for e in side {
            if let Some(first) = seen.get(&e.num) {
                diags.push(Diagnostic::new(
                    RULE,
                    if std::ptr::eq(side, doc) {
                        doc_path
                    } else {
                        wire_path
                    },
                    e.line,
                    format!(
                        "{what} number {} is assigned to both `{}` and `{}`",
                        e.num, first.shown, e.shown
                    ),
                ));
            } else {
                seen.insert(e.num, e);
            }
        }
    }
}

/// Lowercase, underscore-free name used to match `TY_STATS_REQUEST`
/// against `StatsRequest`.
fn normalize(name: &str) -> String {
    let base = name.strip_prefix("TY_").unwrap_or(name);
    base.chars()
        .filter(|c| *c != '_')
        .flat_map(char::to_lowercase)
        .collect()
}

/// Parse the document: frame rows, error rows, `(version N)` title.
#[allow(clippy::type_complexity)] // one call site; splitting the triple adds nothing
fn parse_doc(text: &str) -> (Vec<Entry>, Vec<Entry>, Option<(u32, u64)>) {
    #[derive(PartialEq)]
    enum Section {
        Frames,
        Errors,
        Other,
    }
    let mut section = Section::Other;
    let mut frames = Vec::new();
    let mut errors = Vec::new();
    let mut version = None;
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let l = raw.trim();
        if l.starts_with('#') {
            let h = l.to_lowercase();
            section = if h.contains("frame catalogue") || h.contains("frame catalog") {
                Section::Frames
            } else if h.contains("error codes") {
                Section::Errors
            } else {
                Section::Other
            };
            if version.is_none() {
                if let Some(at) = l.find("(version ") {
                    let tail = &l[at + "(version ".len()..];
                    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
                    if let Ok(v) = digits.parse() {
                        version = Some((line, v));
                    }
                }
            }
            continue;
        }
        if section == Section::Other || !l.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = l.split('|').map(str::trim).collect();
        // `| 1 | Hello | … |` splits into ["", "1", "Hello", …].
        if cells.len() < 3 {
            continue;
        }
        let Ok(num) = cells[1].parse::<u64>() else {
            continue; // header or separator row
        };
        let shown = cells[2].to_string();
        if shown.is_empty() || !shown.chars().all(|c| c.is_ascii_alphanumeric()) {
            continue;
        }
        let entry = Entry {
            line,
            num,
            name: normalize(&shown),
            shown,
        };
        match section {
            Section::Frames => frames.push(entry),
            Section::Errors => errors.push(entry),
            Section::Other => {}
        }
    }
    (frames, errors, version)
}

/// All `const TY_*: u8 = N;` declarations.
fn tag_constants(file: &SourceFile, code: &[usize]) -> Vec<Entry> {
    let mut out = Vec::new();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        if !t.is_ident("const") || file.in_test[code[k]] {
            continue;
        }
        let Some(&name_ti) = code.get(k + 1) else {
            continue;
        };
        let name = &file.tokens[name_ti];
        if name.kind != TokenKind::Ident || !name.text.starts_with("TY_") {
            continue;
        }
        // const TY_X : u8 = N ;
        if let Some(num) = (k + 2..(k + 8).min(code.len()))
            .map(|i| &file.tokens[code[i]])
            .find(|t| t.kind == TokenKind::Number)
            .and_then(|t| int_value(&t.text))
        {
            out.push(Entry {
                line: name.line,
                num,
                name: normalize(&name.text),
                shown: name.text.clone(),
            });
        }
    }
    out
}

/// The code-token range of the body of `fn name`, if present.
fn fn_body(file: &SourceFile, code: &[usize], name: &str) -> Option<std::ops::Range<usize>> {
    for k in 0..code.len() {
        if !file.tokens[code[k]].is_ident("fn")
            || !code
                .get(k + 1)
                .is_some_and(|&n| file.tokens[n].is_ident(name))
        {
            continue;
        }
        let mut depth = 0i32;
        for (i, &ti) in code.iter().enumerate().skip(k + 2) {
            let t = &file.tokens[ti];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 2..i);
                }
            }
        }
        return Some(k + 2..code.len());
    }
    None
}

/// `ErrorCode::Name => N` arms inside `fn to_u16`.
fn error_arms_to(file: &SourceFile, code: &[usize]) -> Vec<Entry> {
    let Some(body) = fn_body(file, code, "to_u16") else {
        return Vec::new();
    };
    let tok = |i: usize| -> &Token { &file.tokens[code[i]] };
    let mut out = Vec::new();
    for i in body.clone() {
        if !tok(i).is_ident("ErrorCode") {
            continue;
        }
        // ErrorCode :: Name => N
        if i + 5 < body.end
            && tok(i + 1).is_punct(':')
            && tok(i + 2).is_punct(':')
            && tok(i + 3).kind == TokenKind::Ident
            && tok(i + 4).is_punct('=')
            && tok(i + 5).is_punct('>')
        {
            if let Some(num) = code
                .get(i + 6)
                .map(|&t| &file.tokens[t])
                .filter(|t| t.kind == TokenKind::Number)
                .and_then(|t| int_value(&t.text))
            {
                let shown = tok(i + 3).text.clone();
                out.push(Entry {
                    line: tok(i + 3).line,
                    num,
                    name: normalize(&shown),
                    shown,
                });
            }
        }
    }
    out
}

/// `N => … ErrorCode::Name …` arms inside `fn from_u16`.
fn error_arms_from(file: &SourceFile, code: &[usize]) -> Vec<Entry> {
    let Some(body) = fn_body(file, code, "from_u16") else {
        return Vec::new();
    };
    let tok = |i: usize| -> &Token { &file.tokens[code[i]] };
    let mut out = Vec::new();
    for i in body.clone() {
        if tok(i).kind != TokenKind::Number {
            continue;
        }
        let Some(num) = int_value(&tok(i).text) else {
            continue;
        };
        if !(i + 2 < body.end && tok(i + 1).is_punct('=') && tok(i + 2).is_punct('>')) {
            continue;
        }
        // Scan the arm (to the next `,` at this nesting) for ErrorCode::Name.
        let mut j = i + 3;
        let mut nest = 0i32;
        while j < body.end {
            let t = tok(j);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if nest == 0 {
                    break;
                }
                nest -= 1;
            } else if nest == 0 && t.is_punct(',') {
                break;
            } else if t.is_ident("ErrorCode")
                && j + 3 < body.end
                && tok(j + 1).is_punct(':')
                && tok(j + 2).is_punct(':')
                && tok(j + 3).kind == TokenKind::Ident
            {
                let shown = tok(j + 3).text.clone();
                out.push(Entry {
                    line: tok(i).line,
                    num,
                    name: normalize(&shown),
                    shown,
                });
                break;
            }
            j += 1;
        }
    }
    out
}

/// The literal value of `const NAME … = N`, with its line.
fn const_value(file: &SourceFile, code: &[usize], name: &str) -> Option<(u32, u64)> {
    for k in 0..code.len() {
        if !file.tokens[code[k]].is_ident("const")
            || !code
                .get(k + 1)
                .is_some_and(|&n| file.tokens[n].is_ident(name))
        {
            continue;
        }
        let line = file.tokens[code[k + 1]].line;
        return (k + 2..(k + 9).min(code.len()))
            .map(|i| &file.tokens[code[i]])
            .find(|t| t.kind == TokenKind::Number)
            .and_then(|t| int_value(&t.text))
            .map(|v| (line, v));
    }
    None
}
