//! Rule `manifest-coverage`: every section file that
//! `storage::artifact::write_index_artifact` writes must be recorded in
//! the checksum manifest, the `MANIFEST` itself must be the *last* write
//! (crash atomicity: a manifest names only fully-written sections), and
//! the garbage collector must recognize every section naming pattern it
//! may need to sweep.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// This rule's name.
pub const RULE: &str = "manifest-coverage";

const WRITER_FN: &str = "write_index_artifact";
const GC_FN: &str = "collect_garbage";
const MANIFEST_CONST: &str = "MANIFEST_FILE";

/// A section-name format template found in the writer, e.g.
/// `"db-{checksum:016x}.oasisdb"`.
struct Template {
    line: u32,
    /// Code index of the string token.
    at: usize,
    text: String,
    /// Up to and including the first `-`.
    prefix: String,
    /// From the final `.`.
    ext: String,
}

/// Check the artifact writer/GC invariants on `storage/src/artifact.rs`.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = file.code_indices();

    let Some(body) = fn_body(file, &code, WRITER_FN) else {
        diags.push(Diagnostic::new(
            RULE,
            &file.path,
            1,
            format!("expected `fn {WRITER_FN}` was not found; the manifest invariants cannot be checked"),
        ));
        return;
    };

    check_write_order(file, &code, &body, diags);

    let templates = find_templates(file, &code, &body);
    if templates.is_empty() {
        diags.push(Diagnostic::new(
            RULE,
            &file.path,
            file.tokens[code[body.start]].line,
            format!(
                "`{WRITER_FN}` contains no section-name templates; section writes are untracked"
            ),
        ));
        return;
    }

    for t in &templates {
        if !recorded_in_manifest(file, &code, &body, t) {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                t.line,
                format!(
                    "section file `{}` is written but never recorded in a manifest \
                     `SectionMeta {{ file: … }}` entry",
                    t.text
                ),
            ));
        }
    }

    match fn_body(file, &code, GC_FN) {
        None => diags.push(Diagnostic::new(
            RULE,
            &file.path,
            1,
            format!("expected `fn {GC_FN}` was not found; orphaned sections would never be swept"),
        )),
        Some(gc) => {
            let starts = literal_args(file, &code, &gc, "starts_with");
            let ends = literal_args(file, &code, &gc, "ends_with");
            for t in &templates {
                if !starts.contains(&t.prefix) || !ends.contains(&t.ext) {
                    diags.push(Diagnostic::new(
                        RULE,
                        &file.path,
                        t.line,
                        format!(
                            "section pattern `{}…{}` (from `{}`) is not recognized by \
                             `{GC_FN}`; orphans of this section kind would never be swept",
                            t.prefix, t.ext, t.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Every `write_atomic` call in the writer: the manifest write must exist,
/// be unique, come last, and no section may be written under a hard-coded
/// literal name (sections are content-addressed through their templates).
fn check_write_order(
    file: &SourceFile,
    code: &[usize],
    body: &std::ops::Range<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut calls: Vec<(u32, bool, bool)> = Vec::new(); // (line, is_manifest, literal_name)
    for k in body.clone() {
        let t = &file.tokens[code[k]];
        if !t.is_ident("write_atomic")
            || !code
                .get(k + 1)
                .is_some_and(|&n| file.tokens[n].is_punct('('))
        {
            continue;
        }
        let args = paren_range(file, code, k + 1);
        // The file-name argument is the second one.
        let name_arg = nth_arg(file, code, &args, 1);
        let is_manifest = name_arg
            .clone()
            .any(|i| file.tokens[code[i]].is_ident(MANIFEST_CONST));
        let literal_name = name_arg
            .clone()
            .any(|i| file.tokens[code[i]].kind == TokenKind::Str);
        calls.push((t.line, is_manifest, literal_name));
    }
    let manifest_writes = calls.iter().filter(|c| c.1).count();
    match (manifest_writes, calls.last()) {
        (0, _) => diags.push(Diagnostic::new(
            RULE,
            &file.path,
            file.tokens[code[body.start]].line,
            format!(
                "`{WRITER_FN}` never writes `{MANIFEST_CONST}`; sections would be unreferenced"
            ),
        )),
        (_, Some(&(line, is_manifest, _))) if !is_manifest || manifest_writes > 1 => {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                line,
                format!(
                    "`{MANIFEST_CONST}` must be written exactly once and last \
                     (crash atomicity: the manifest may only name fully-written sections)"
                ),
            ));
        }
        _ => {}
    }
    for &(line, is_manifest, literal_name) in &calls {
        if !is_manifest && literal_name {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                line,
                "section written under a hard-coded file name; sections must be \
                 content-addressed via a checksum template and recorded in the manifest",
            ));
        }
    }
}

/// String tokens in the writer body shaped like a section-name template:
/// `prefix-{…}….ext`.
fn find_templates(
    file: &SourceFile,
    code: &[usize],
    body: &std::ops::Range<usize>,
) -> Vec<Template> {
    let mut out = Vec::new();
    for k in body.clone() {
        let t = &file.tokens[code[k]];
        if t.kind != TokenKind::Str {
            continue;
        }
        let content = t.text.trim_matches('"');
        let Some(dash) = content.find('-') else {
            continue;
        };
        let Some(dot) = content.rfind('.') else {
            continue;
        };
        let ext = &content[dot..];
        if dash == 0
            || dot <= dash
            || !content.contains('{')
            || ext.len() < 2
            || !ext[1..].chars().all(|c| c.is_ascii_alphanumeric())
        {
            continue;
        }
        out.push(Template {
            line: t.line,
            at: k,
            text: content.to_string(),
            prefix: content[..=dash].to_string(),
            ext: ext.to_string(),
        });
    }
    out
}

/// Is the template's file name recorded in a `SectionMeta { file: … }`?
/// Either the `format!` feeds `file:` directly, or it is bound by
/// `let name = format!(…)` and `file: name` appears later in the body.
fn recorded_in_manifest(
    file: &SourceFile,
    code: &[usize],
    body: &std::ops::Range<usize>,
    t: &Template,
) -> bool {
    // Walk back over `format ! (` to the tokens introducing the call.
    let mut k = t.at;
    let mut steps = 0;
    while k > body.start && steps < 6 {
        k -= 1;
        steps += 1;
        if file.tokens[code[k]].is_ident("format") {
            break;
        }
    }
    if !file.tokens[code[k]].is_ident("format") || k < 2 {
        return false;
    }
    let before = |off: usize| &file.tokens[code[k - off]];
    // `file : format ! ( "…" )` — recorded directly.
    if before(2).is_ident("file") && before(1).is_punct(':') {
        return true;
    }
    // `let name = format ! ( "…" )` — find `file : name` downstream.
    if before(3).is_ident("let") && before(1).is_punct('=') {
        let name = &before(2).text;
        return (t.at..body.end).any(|i| {
            file.tokens[code[i]].is_ident("file")
                && code
                    .get(i + 1)
                    .is_some_and(|&n| file.tokens[n].is_punct(':'))
                && code
                    .get(i + 2)
                    .is_some_and(|&n| file.tokens[n].is_ident(name))
        });
    }
    false
}

/// All string-literal first arguments of `name(…)` calls in `range`.
fn literal_args(
    file: &SourceFile,
    code: &[usize],
    range: &std::ops::Range<usize>,
    name: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    for k in range.clone() {
        if !file.tokens[code[k]].is_ident(name) {
            continue;
        }
        if let Some(&arg) = code.get(k + 2) {
            let t = &file.tokens[arg];
            if file.tokens[code[k + 1]].is_punct('(') && t.kind == TokenKind::Str {
                out.push(t.text.trim_matches('"').to_string());
            }
        }
    }
    out
}

/// The code-token range of the body of `fn name`, if present.
fn fn_body(file: &SourceFile, code: &[usize], name: &str) -> Option<std::ops::Range<usize>> {
    for k in 0..code.len() {
        if !file.tokens[code[k]].is_ident("fn")
            || !code
                .get(k + 1)
                .is_some_and(|&n| file.tokens[n].is_ident(name))
        {
            continue;
        }
        let mut depth = 0i32;
        for (i, &ti) in code.iter().enumerate().skip(k + 2) {
            let t = &file.tokens[ti];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 2..i);
                }
            }
        }
        return Some(k + 2..code.len());
    }
    None
}

/// The code-index range inside the parens opening at `open`.
fn paren_range(file: &SourceFile, code: &[usize], open: usize) -> std::ops::Range<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(open) {
        let t = &file.tokens[ti];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return open + 1..k;
            }
        }
    }
    open + 1..code.len()
}

/// The code-index range of the `n`th (0-based) top-level argument in an
/// argument range.
fn nth_arg(
    file: &SourceFile,
    code: &[usize],
    args: &std::ops::Range<usize>,
    n: usize,
) -> std::ops::Range<usize> {
    let mut start = args.start;
    let mut seen = 0usize;
    let mut nest = 0i32;
    for k in args.clone() {
        let t = &file.tokens[code[k]];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            nest += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            nest -= 1;
        } else if nest == 0 && t.is_punct(',') {
            if seen == n {
                return start..k;
            }
            seen += 1;
            start = k + 1;
        }
    }
    if seen == n {
        start..args.end
    } else {
        args.end..args.end
    }
}
