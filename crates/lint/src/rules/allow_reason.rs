//! Rule `allow-needs-reason`: every lint suppression must say why.
//! A `#[allow(…)]` / `#[expect(…)]` attribute outside test code needs an
//! adjacent justification comment (above it or trailing it), and every
//! inline `oasis-lint: allow(rule)` escape must carry reason text after
//! the closing parenthesis. Doc comments do not count as justifications —
//! they document the item, not the suppression.

use crate::diag::Diagnostic;
use crate::rules::RULES;
use crate::source::SourceFile;

/// This rule's name.
pub const RULE: &str = "allow-needs-reason";

/// Check suppression hygiene in `file`.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = file.code_indices();

    // Lines on which a justification-capable comment sits (or ends).
    let comment_lines: Vec<u32> = file
        .tokens
        .iter()
        .filter(|t| t.is_comment())
        .filter(|t| {
            let stripped = t
                .text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim();
            // Doc comments (`///`, `//!`) and empty comments don't justify.
            !t.text.starts_with("///") && !t.text.starts_with("//!") && stripped.len() >= 4
        })
        .map(|t| t.end_line())
        .collect();

    for (k, &ti) in code.iter().enumerate() {
        if file.in_test[ti] || !file.tokens[ti].is_punct('#') {
            continue;
        }
        let mut j = k + 1;
        if code.get(j).is_some_and(|&t| file.tokens[t].is_punct('!')) {
            j += 1;
        }
        if !code.get(j).is_some_and(|&t| file.tokens[t].is_punct('[')) {
            continue;
        }
        let Some(&head) = code.get(j + 1) else {
            continue;
        };
        let head = &file.tokens[head];
        if !(head.is_ident("allow") || head.is_ident("expect")) {
            continue;
        }
        let line = file.tokens[ti].line;
        let justified = comment_lines.iter().any(|&cl| cl == line || cl + 1 == line);
        if !justified {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                line,
                format!(
                    "`#[{}(…)]` has no justification; add a comment on the line \
                     above (or trailing it) saying why the lint is suppressed",
                    head.text
                ),
            ));
        }
    }

    for e in &file.escapes {
        if file.in_test.get(e.token).copied().unwrap_or(false) {
            continue;
        }
        if !e.has_reason {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                e.line,
                format!(
                    "escape has no reason; write `// oasis-lint: allow({}) — reason`",
                    e.rules.join(", ")
                ),
            ));
        }
        for r in &e.rules {
            if !RULES.contains(&r.as_str()) {
                diags.push(Diagnostic::new(
                    RULE,
                    &file.path,
                    e.line,
                    format!(
                        "escape names unknown rule `{r}`; known rules: {}",
                        RULES.join(", ")
                    ),
                ));
            }
        }
    }
}
