//! Rule `panic-free-serving`: serving-path modules must not contain a
//! reachable panic. Banned outside test code: `.unwrap()` / `.expect()`
//! (and their `_err` variants), the `panic!` / `todo!` / `unimplemented!`
//! macros, and direct slice indexing (`buf[i]`, `buf[a..b]`) — each
//! indexing site either becomes a checked `.get()` or carries a justified
//! escape explaining why the bounds hold.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// This rule's name.
pub const RULE: &str = "panic-free-serving";

const BANNED_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const BANNED_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Keywords that may directly precede a `[` that *starts* an expression
/// (array literal or slice pattern) rather than indexing one.
const NON_INDEXABLE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// Scan a serving-path file for reachable panics.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = file.code_indices();
    for (k, &ti) in code.iter().enumerate() {
        if file.in_test[ti] {
            continue;
        }
        let tok = &file.tokens[ti];
        let prev = k.checked_sub(1).map(|p| &file.tokens[code[p]]);
        let next = code.get(k + 1).map(|&n| &file.tokens[n]);

        if tok.kind == TokenKind::Ident && BANNED_METHODS.contains(&tok.text.as_str()) {
            let is_method_call =
                prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('));
            if is_method_call {
                diags.push(Diagnostic::new(
                    RULE,
                    &file.path,
                    tok.line,
                    format!(
                        "`.{}()` can panic on the serving path; return a typed error \
                         (or add `// oasis-lint: allow({RULE}) — reason` if the panic \
                         is provably unreachable)",
                        tok.text
                    ),
                ));
            }
            continue;
        }

        if tok.kind == TokenKind::Ident && BANNED_MACROS.contains(&tok.text.as_str()) {
            if next.is_some_and(|n| n.is_punct('!')) {
                diags.push(Diagnostic::new(
                    RULE,
                    &file.path,
                    tok.line,
                    format!(
                        "`{}!` is banned on the serving path; surface the failure as a \
                         typed error instead",
                        tok.text
                    ),
                ));
            }
            continue;
        }

        // Indexing: a `[` whose previous token ends an expression. `#[`
        // attributes, array literals (`= [`, `([`, `, [`), macro bangs
        // (`vec![`) and type positions (`: [u8; 4]`) are all excluded
        // because their previous token is not expression-ending.
        if tok.is_punct('[') {
            let indexes_expression = match prev {
                Some(p) => match p.kind {
                    TokenKind::Ident => !NON_INDEXABLE_KEYWORDS.contains(&p.text.as_str()),
                    TokenKind::Punct => p.is_punct(']') || p.is_punct(')'),
                    _ => false,
                },
                None => false,
            };
            if indexes_expression {
                diags.push(Diagnostic::new(
                    RULE,
                    &file.path,
                    tok.line,
                    format!(
                        "direct slice indexing can panic on the serving path; use \
                         `.get(..)` and handle `None` (or add \
                         `// oasis-lint: allow({RULE}) — reason` stating why the \
                         bounds hold)"
                    ),
                ));
            }
        }
    }
}
