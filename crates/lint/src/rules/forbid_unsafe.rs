//! Rule `forbid-unsafe`: the workspace contains no `unsafe` code, and
//! each crate root pins that fact with `#![forbid(unsafe_code)]` so it
//! cannot regress silently. This rule verifies the attribute is present
//! in every lib root the workspace declares.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// This rule's name.
pub const RULE: &str = "forbid-unsafe";

/// Check that every declared lib root carries the attribute.
pub fn check(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for root in &ws.lib_roots {
        // Exact match first: `src/lib.rs` must not suffix-match some
        // `crates/*/src/lib.rs`.
        let Some(file) = ws.files.iter().find(|f| &f.path == root).or_else(|| {
            ws.files
                .iter()
                .find(|f| f.path.ends_with(&format!("/{root}")))
        }) else {
            diags.push(Diagnostic::new(
                RULE,
                root.clone(),
                1,
                "declared lib root is missing from the workspace sources",
            ));
            continue;
        };
        if !has_forbid_unsafe(file) {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`; the workspace is \
                 unsafe-free and every crate must pin that",
            ));
        }
    }
}

/// Does the file contain a `forbid(…)` attribute listing `unsafe_code`?
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let code = file.code_indices();
    for k in 0..code.len() {
        if !file.tokens[code[k]].is_ident("forbid")
            || !code
                .get(k + 1)
                .is_some_and(|&t| file.tokens[t].is_punct('('))
        {
            continue;
        }
        let mut depth = 0i32;
        for &ti in code.iter().skip(k + 1) {
            let t = &file.tokens[ti];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("unsafe_code") {
                return true;
            }
        }
    }
    false
}
