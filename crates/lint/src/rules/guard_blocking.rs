//! Rule `guard-across-blocking`: a `Mutex`/`RwLock` guard must not stay
//! live across a blocking call — `Condvar::wait`, channel `recv`, thread
//! `join`/`sleep`, socket `accept`/`connect`, or stream I/O (the
//! `IndexCatalog` + `ServingEngine` deadlock shape).
//!
//! Two shapes are detected, outside test code:
//!
//! 1. a `let` binding whose initialiser acquires a lock (a zero-argument
//!    `.lock()` / `.read()` / `.write()`), followed by a blocking call
//!    before the binding's block ends (or before `drop(guard)`);
//! 2. a single expression chaining an acquisition into a blocking call
//!    (`x.lock()…recv()…` inside one statement).
//!
//! A blocking call that receives the guard *as an argument* is exempt:
//! `condvar.wait(guard)` consumes the guard by design.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// This rule's name.
pub const RULE: &str = "guard-across-blocking";

/// Zero-argument methods that acquire a lock guard.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Methods that block the calling thread.
const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "connect",
    "join",
    "sleep",
    "park",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
];

/// Free functions that block (this workspace's framed socket I/O).
const BLOCKING_FNS: &[&str] = &["read_frame", "write_frame", "sleep", "park"];

struct Guard {
    name: String,
    line: u32,
    /// Code index after which the guard is live (its `let`'s `;`).
    born: usize,
    /// Code index at which the guard dies (block close or `drop(...)`).
    dies: usize,
}

/// Scan `file` for guards held across blocking calls.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = file.code_indices();

    // Brace depth *before* each code token.
    let mut depth_at = Vec::with_capacity(code.len());
    let mut depth = 0i32;
    for &ti in &code {
        depth_at.push(depth);
        if file.tokens[ti].is_punct('{') {
            depth += 1;
        } else if file.tokens[ti].is_punct('}') {
            depth -= 1;
        }
    }

    let guards = collect_guards(file, &code, &depth_at);

    for k in 0..code.len() {
        let ti = code[k];
        if file.in_test[ti] {
            continue;
        }
        let Some((callee_line, callee, args)) = blocking_call_at(file, &code, k) else {
            continue;
        };
        for g in &guards {
            if g.born < k && k < g.dies && !args_name(file, &code, &args, &g.name) {
                diags.push(Diagnostic::new(
                    RULE,
                    &file.path,
                    callee_line,
                    format!(
                        "lock guard `{}` (acquired on line {}) is still live across \
                         blocking call `{}`; drop the guard first, or pass it into \
                         the wait",
                        g.name, g.line, callee
                    ),
                ));
            }
        }
        // Shape 2: an acquisition chained into this same statement.
        if let Some(acq_line) = chained_acquisition(file, &code, k) {
            diags.push(Diagnostic::new(
                RULE,
                &file.path,
                callee_line,
                format!(
                    "temporary lock guard acquired on line {acq_line} is chained \
                     into blocking call `{callee}` in the same statement; bind \
                     and drop the guard before blocking"
                ),
            ));
        }
    }
}

/// If the code token at `k` is the callee identifier of a blocking call,
/// return `(line, rendered name, argument code-index range)`.
fn blocking_call_at(
    file: &SourceFile,
    code: &[usize],
    k: usize,
) -> Option<(u32, String, std::ops::Range<usize>)> {
    let t = &file.tokens[code[k]];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let prev_dot = k
        .checked_sub(1)
        .is_some_and(|p| file.tokens[code[p]].is_punct('.'));
    let next_paren = code
        .get(k + 1)
        .is_some_and(|&n| file.tokens[n].is_punct('('));
    if !next_paren {
        return None;
    }
    let name = t.text.as_str();
    let is_blocking = if prev_dot {
        BLOCKING_METHODS.contains(&name)
    } else {
        BLOCKING_FNS.contains(&name)
    };
    if !is_blocking {
        return None;
    }
    // Zero-argument `.read()` / `.write()` never blocks here — it is the
    // lock-acquisition shape, which `ACQUIRE_METHODS` handles instead.
    let args = paren_range(file, code, k + 1);
    if prev_dot && matches!(name, "read" | "write") && args.is_empty() {
        return None;
    }
    let rendered = if prev_dot {
        format!(".{name}(...)")
    } else {
        format!("{name}(...)")
    };
    Some((t.line, rendered, args))
}

/// The code-index range of the arguments inside the paren opening at
/// code index `open` (exclusive of both parens).
fn paren_range(file: &SourceFile, code: &[usize], open: usize) -> std::ops::Range<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(open) {
        let t = &file.tokens[ti];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return open + 1..k;
            }
        }
    }
    open + 1..code.len()
}

/// Does the ident `name` appear in the argument range?
fn args_name(file: &SourceFile, code: &[usize], args: &std::ops::Range<usize>, name: &str) -> bool {
    code[args.start.min(code.len())..args.end.min(code.len())]
        .iter()
        .any(|&ti| file.tokens[ti].is_ident(name))
}

/// Is the code token at `k` a zero-argument lock acquisition
/// (`.lock()` / `.read()` / `.write()`)?
fn acquisition_at(file: &SourceFile, code: &[usize], k: usize) -> bool {
    let t = &file.tokens[code[k]];
    if t.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&t.text.as_str()) {
        return false;
    }
    let prev_dot = k
        .checked_sub(1)
        .is_some_and(|p| file.tokens[code[p]].is_punct('.'));
    prev_dot
        && code
            .get(k + 1)
            .is_some_and(|&n| file.tokens[n].is_punct('('))
        && paren_range(file, code, k + 1).is_empty()
}

/// Walk backwards from the blocking call at `k` to the start of its
/// statement; if an acquisition occurs in between (same statement, so
/// the guard is a live temporary), return the acquisition's line. Braced
/// regions passed on the way back (earlier nested blocks, struct
/// literals) are skipped whole — their contents belong to other
/// statements.
fn chained_acquisition(file: &SourceFile, code: &[usize], k: usize) -> Option<u32> {
    let mut nest = 0i32;
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[code[j]];
        if t.is_punct('}') {
            nest += 1;
            continue;
        }
        if t.is_punct('{') {
            if nest > 0 {
                nest -= 1;
                continue;
            }
            // The enclosing block opens here: statement start.
            return None;
        }
        if nest > 0 {
            continue;
        }
        if t.is_punct(';') {
            return None;
        }
        if acquisition_at(file, code, j) {
            return Some(t.line);
        }
    }
    None
}

/// Find every `let <name> = … .lock()/.read()/.write() …;` binding and
/// compute its live range.
fn collect_guards(file: &SourceFile, code: &[usize], depth_at: &[i32]) -> Vec<Guard> {
    let mut guards = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if !file.tokens[code[k]].is_ident("let") || file.in_test[code[k]] {
            k += 1;
            continue;
        }
        let let_depth = depth_at[k];
        let mut j = k + 1;
        if code.get(j).is_some_and(|&t| file.tokens[t].is_ident("mut")) {
            j += 1;
        }
        let Some(&name_ti) = code.get(j) else { break };
        let name_tok = &file.tokens[name_ti];
        if name_tok.kind != TokenKind::Ident {
            // Destructuring pattern; a guard never binds through one here.
            k = j;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Find the `=` (skipping an optional type annotation) and the
        // terminating `;` at the let's depth.
        let mut eq = None;
        let mut end = None;
        let mut nest = 0i32;
        for (i, &ti) in code.iter().enumerate().skip(j + 1) {
            let t = &file.tokens[ti];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                nest -= 1;
            } else if nest == 0 && t.is_punct('=') && eq.is_none() {
                eq = Some(i);
            } else if nest == 0 && t.is_punct(';') {
                end = Some(i);
                break;
            }
            if nest < 0 {
                break;
            }
        }
        let (Some(eq), Some(end)) = (eq, end) else {
            k += 1;
            continue;
        };
        let acquires = (eq + 1..end).any(|i| acquisition_at(file, code, i));
        if acquires {
            // Live from the `;` until the enclosing block closes or an
            // explicit `drop(name)`.
            let mut dies = code.len();
            for i in end + 1..code.len() {
                if depth_at[i] < let_depth
                    || (file.tokens[code[i]].is_punct('}') && depth_at[i] <= let_depth)
                {
                    dies = i;
                    break;
                }
                if file.tokens[code[i]].is_ident("drop")
                    && args_name(file, code, &paren_range(file, code, i + 1), &name)
                {
                    dies = i;
                    break;
                }
            }
            guards.push(Guard {
                name,
                line,
                born: end,
                dies,
            });
        }
        k = end;
    }
    guards
}
