//! A lexed source file plus the two per-file analyses every rule needs:
//! which tokens live inside test code, and which lines carry an
//! `oasis-lint` escape.

use crate::lexer::{lex, Token};

/// An inline rule escape parsed from a comment. The syntax is
/// `// oasis-lint: allow(rule-name) — reason text`; the escape covers its
/// own line(s) and the line immediately after, so it can sit either above
/// the flagged code or trailing on the same line.
#[derive(Debug, Clone)]
pub struct Escape {
    /// Index of the comment token carrying the escape.
    pub token: usize,
    /// First line the escape covers.
    pub line: u32,
    /// Last line the escape covers (start of the *next* code line).
    pub end_line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether justification text follows the closing parenthesis.
    pub has_reason: bool,
}

/// One lexed, analysed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The raw text (rules that read line content use this).
    pub text: String,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: true for tokens inside `#[cfg(test)]` or
    /// `#[test]` items, which the serving-path rules skip.
    pub in_test: Vec<bool>,
    /// Inline escapes found in comments.
    pub escapes: Vec<Escape>,
}

impl SourceFile {
    /// Lex and analyse `text` as the file at `path`.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into().replace('\\', "/");
        let text = text.into();
        let tokens = lex(&text);
        let in_test = mark_test_regions(&tokens);
        let escapes = find_escapes(&tokens);
        SourceFile {
            path,
            text,
            tokens,
            in_test,
            escapes,
        }
    }

    /// True if an escape for `rule` covers `line`.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.escapes
            .iter()
            .any(|e| e.line <= line && line <= e.end_line && e.rules.iter().any(|r| r == rule))
    }

    /// Indices of the non-comment tokens, in order. Most rules walk this
    /// so that comments never split a syntactic pattern.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }
}

/// Mark every token that belongs to a `#[test]` function or a
/// `#[cfg(test)]` item (typically `mod tests { … }`). Detection is
/// attribute-driven: on a test attribute, the following item — through
/// any further attributes, to its closing `;` or matching `}` — is
/// marked. `#[cfg(not(test))]` and other cfg shapes are *not* treated as
/// test code.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        if let Some((attr_end, is_test)) = parse_attribute(tokens, &code, k) {
            if is_test {
                let item_end = find_item_end(tokens, &code, attr_end);
                // Mark from the opening `#` through the end of the item,
                // comments in between included.
                let from = code[k];
                let to = code.get(item_end.min(code.len() - 1)).copied().unwrap_or(0);
                for flag in in_test.iter_mut().take(to + 1).skip(from) {
                    *flag = true;
                }
                k = item_end + 1;
                continue;
            }
            k = attr_end;
            continue;
        }
        k += 1;
    }
    in_test
}

/// If `code[k]` opens an attribute (`#[...]` or `#![...]`), return the
/// code index just past its `]` and whether it is `#[test]`/`#[cfg(test)]`.
fn parse_attribute(tokens: &[Token], code: &[usize], k: usize) -> Option<(usize, bool)> {
    let tok = |i: usize| -> Option<&Token> { code.get(i).map(|&t| &tokens[t]) };
    if !tok(k)?.is_punct('#') {
        return None;
    }
    let mut j = k + 1;
    if tok(j)?.is_punct('!') {
        j += 1;
    }
    if !tok(j)?.is_punct('[') {
        return None;
    }
    let open = j;
    let mut depth = 0i32;
    let mut end = open;
    for i in open..code.len() {
        match &tokens[code[i]] {
            t if t.is_punct('[') => depth += 1,
            t if t.is_punct(']') => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
        if i + 1 == code.len() {
            end = i;
        }
    }
    // Inner tokens, brackets excluded.
    let inner: Vec<&Token> = (open + 1..end).filter_map(tok).collect();
    let is_test = match inner.as_slice() {
        [t] => t.is_ident("test"),
        [c, p, t, q] => {
            c.is_ident("cfg") && p.is_punct('(') && t.is_ident("test") && q.is_punct(')')
        }
        _ => false,
    };
    Some((end + 1, is_test))
}

/// From code index `k` (just past an attribute), skip further attributes
/// and return the code index of the token ending the annotated item: the
/// `;` of a bodiless item, or the `}` matching its first body brace.
fn find_item_end(tokens: &[Token], code: &[usize], mut k: usize) -> usize {
    while let Some((attr_end, _)) = parse_attribute(tokens, code, k) {
        k = attr_end;
    }
    let mut depth = 0i32;
    for i in k..code.len() {
        let t = &tokens[code[i]];
        if depth == 0 && t.is_punct(';') {
            return i;
        }
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Scan comment tokens for `oasis-lint: allow(rule, …)` escapes.
fn find_escapes(tokens: &[Token]) -> Vec<Escape> {
    const MARKER: &str = "oasis-lint:";
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        // Doc comments never carry escapes: documentation may *describe*
        // the escape syntax without enacting it.
        if tok.text.starts_with("///") || tok.text.starts_with("//!") {
            continue;
        }
        let Some(at) = tok.text.find(MARKER) else {
            continue;
        };
        let after = tok.text[at + MARKER.len()..].trim_start();
        let Some(rest) = after.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut tail = rest[close + 1..].trim_start();
        for sep in ["—", "--", "-", ":", ","] {
            if let Some(t) = tail.strip_prefix(sep) {
                tail = t;
                break;
            }
        }
        let reason = tail.trim().trim_end_matches("*/").trim();
        out.push(Escape {
            token: i,
            line: tok.line,
            end_line: tok.end_line() + 1,
            rules,
            has_reason: reason.len() >= 3,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let f = SourceFile::new(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n}\nfn tail() {}\n",
        );
        let unwrap_at = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(f.in_test[unwrap_at]);
        let tail_at = f
            .tokens
            .iter()
            .position(|t| t.is_ident("tail"))
            .expect("tail token");
        assert!(!f.in_test[tail_at]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let f = SourceFile::new("x.rs", "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(f.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn test_attr_with_stacked_attrs() {
        let f = SourceFile::new(
            "x.rs",
            "#[test]\n#[ignore]\nfn t() { boom(); }\nfn live() {}\n",
        );
        let boom = f
            .tokens
            .iter()
            .position(|t| t.is_ident("boom"))
            .expect("boom");
        let live = f
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live");
        assert!(f.in_test[boom]);
        assert!(!f.in_test[live]);
    }

    #[test]
    fn escape_parsing() {
        let f = SourceFile::new(
            "x.rs",
            "// oasis-lint: allow(panic-free-serving) — bounds checked above\nlet x = v[0];\n// oasis-lint: allow(guard-across-blocking)\nlet y = 1;\n",
        );
        assert_eq!(f.escapes.len(), 2);
        assert!(f.escapes[0].has_reason);
        assert!(f.allows("panic-free-serving", 2));
        assert!(!f.escapes[1].has_reason);
        assert!(f.allows("guard-across-blocking", 4));
        assert!(!f.allows("panic-free-serving", 4));
    }
}
