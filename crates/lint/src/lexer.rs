//! A small hand-rolled Rust lexer: just enough token structure for the
//! lint rules, and hardened so that *no* input — valid Rust, truncated
//! Rust, or arbitrary bytes — can make it panic.
//!
//! The lexer understands the parts of the language where a naive text
//! scan goes wrong: line comments, nested block comments, string
//! literals (plain, byte, C, and raw with any `#` count), raw
//! identifiers, character literals vs. lifetimes, and numeric literals.
//! Comments are *kept* as tokens because the escape syntax and the
//! justification rule both read them.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers lex as their bare name).
    Ident,
    /// A numeric literal (integer or float, any radix, suffix included).
    Number,
    /// A string literal of any flavour, quotes and prefix included.
    Str,
    /// A character or byte-character literal, quotes included.
    Char,
    /// A lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// A `//` comment, text to end of line.
    LineComment,
    /// A `/* ... */` comment (nesting-aware), delimiters included.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The source text of the token (for raw identifiers, the name
    /// without the `r#` prefix).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// True if this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// The line a token *ends* on (relevant for block comments).
    pub fn end_line(&self) -> u32 {
        let newlines = self.text.bytes().filter(|&b| b == b'\n').count() as u32;
        self.line.saturating_add(newlines)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 character starting with `lead` (1 for
/// malformed leads, so the scan always advances).
fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Slice `src` at byte positions, tolerating boundaries that fall inside
/// a multi-byte character (possible only on malformed input).
fn slice(src: &str, start: usize, end: usize) -> String {
    match src.get(start..end) {
        Some(s) => s.to_string(),
        None => String::from_utf8_lossy(&src.as_bytes()[start.min(src.len())..end.min(src.len())])
            .into_owned(),
    }
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    at: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.at + off).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = slice(self.src, start, self.at);
        self.out.push(Token { kind, text, line });
    }

    /// Consume a `"..."` body from the opening quote, honouring `\`
    /// escapes. Unterminated strings run to end of input without panicking.
    fn string_body(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.at += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.at = (self.at + 2).min(self.bytes.len());
                }
                b'"' => {
                    self.at += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                _ => self.at += 1,
            }
        }
    }

    /// Consume a raw string body from the opening quote: ends at `"`
    /// followed by `hashes` `#` characters.
    fn raw_string_body(&mut self, hashes: usize) {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.at += 1;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
                self.at += 1;
                continue;
            }
            if b == b'"' {
                let tail = &self.bytes[self.at + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                    self.at += 1 + hashes;
                    return;
                }
            }
            self.at += 1;
        }
    }

    /// Consume a character literal from the opening `'`, or a lifetime if
    /// that is what the quote introduces. Returns the token kind used.
    fn char_or_lifetime(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped character literal: skip to the closing quote.
                self.at += 2;
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\\' => self.at = (self.at + 2).min(self.bytes.len()),
                        b'\'' => {
                            self.at += 1;
                            break;
                        }
                        b'\n' => break, // unterminated; don't eat the file
                        _ => self.at += 1,
                    }
                }
                TokenKind::Char
            }
            Some(c) => {
                let len = utf8_len(c);
                if self.peek(1 + len) == Some(b'\'') && c != b'\'' {
                    // 'x' — a one-character literal (possibly multi-byte).
                    self.at += 2 + len;
                    TokenKind::Char
                } else if is_ident_start(c) {
                    // 'name — a lifetime.
                    self.at += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.at += 1;
                    }
                    TokenKind::Lifetime
                } else {
                    // A stray quote (malformed input): one punct char.
                    self.at += 1;
                    TokenKind::Punct
                }
            }
            None => {
                self.at += 1;
                TokenKind::Punct
            }
        }
    }

    /// Consume a numeric literal (digits, `_`, radix prefixes, suffixes,
    /// a decimal point followed by a digit, decimal exponents).
    fn number(&mut self) {
        let decimal = !(self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')));
        self.at += 1;
        while let Some(b) = self.peek(0) {
            let part_of_number = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || (decimal
                    && matches!(b, b'+' | b'-')
                    && self.at > 0
                    && matches!(self.bytes[self.at - 1], b'e' | b'E'));
            if !part_of_number {
                break;
            }
            self.at += 1;
        }
    }

    /// Handle an identifier that may instead introduce a string literal
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'…'`) or a raw
    /// identifier (`r#name`).
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.at;
        let line = self.line;
        let first = self.peek(0).unwrap_or(0);
        if matches!(first, b'r' | b'b' | b'c') {
            let mut j = 1usize;
            let mut raw = first == b'r';
            if matches!(first, b'b' | b'c') && self.peek(1) == Some(b'r') {
                raw = true;
                j = 2;
            }
            let mut hashes = 0usize;
            if raw {
                while self.peek(j + hashes) == Some(b'#') {
                    hashes += 1;
                }
            }
            match self.peek(j + hashes) {
                Some(b'"') => {
                    self.at += j + hashes;
                    if raw {
                        self.raw_string_body(hashes);
                    } else {
                        self.string_body();
                    }
                    self.push(TokenKind::Str, start, line);
                    return;
                }
                Some(b'\'') if first == b'b' && j == 1 && hashes == 0 => {
                    self.at += 1;
                    let kind = self.char_or_lifetime();
                    // `b'…'` is always a byte literal, never a lifetime.
                    let kind = if kind == TokenKind::Lifetime {
                        TokenKind::Ident
                    } else {
                        kind
                    };
                    self.push(kind, start, line);
                    return;
                }
                Some(c) if first == b'r' && j == 1 && hashes == 1 && is_ident_start(c) => {
                    // Raw identifier `r#name`: token text is the bare name.
                    self.at += 2;
                    let name_start = self.at;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.at += 1;
                    }
                    let text = slice(self.src, name_start, self.at);
                    self.out.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                    });
                    return;
                }
                _ => {}
            }
        }
        // A plain identifier.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.at += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.at;
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                _ if b.is_ascii_whitespace() => self.at += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.at += 1;
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.at += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.peek(0) {
                            None => break,
                            Some(b'\n') => {
                                self.line += 1;
                                self.at += 1;
                            }
                            Some(b'/') if self.peek(1) == Some(b'*') => {
                                depth += 1;
                                self.at += 2;
                            }
                            Some(b'*') if self.peek(1) == Some(b'/') => {
                                depth -= 1;
                                self.at += 2;
                            }
                            Some(_) => self.at += 1,
                        }
                    }
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.string_body();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(kind, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.at += utf8_len(b);
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }
}

/// Lex `src` into a token stream. Total: never panics, for any input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        at: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Parse the integer value of a numeric-literal token: handles `_`
/// separators, `0x`/`0o`/`0b` radices, and type suffixes (`u8`, `usize`,
/// …). Returns `None` for floats and malformed text.
pub fn int_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (radix, digits) = match t.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        rest => (10, rest),
    };
    let end = digits
        .iter()
        .position(|&b| !(b as char).is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    // Anything after the digits must be a type suffix, not `.5` or `e9`.
    match digits[end..].first() {
        None | Some(b'u' | b'i') => {}
        Some(_) => return None,
    }
    u64::from_str_radix(std::str::from_utf8(&digits[..end]).ok()?, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_code() {
        let toks = kinds("a // b.unwrap()\n/* c /* nested */ d */ e");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "e"]);
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r##"let s = "x.unwrap()"; let r = r#"also " here"#;"##);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c = 'x'; fn f<'a>(v: &'a str) {} let s = 'Δ';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn int_values() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0x2A"), Some(42));
        assert_eq!(int_value("1_000u32"), Some(1000));
        assert_eq!(int_value("64"), Some(64));
        assert_eq!(int_value("1.5"), None);
        assert_eq!(int_value("1e9"), None);
    }
}
