//! Minimal, strict FASTA reading and writing.
//!
//! SWISS-PROT and genome releases ship as FASTA; this module lets the
//! examples and the benchmark harness ingest real files when available while
//! the synthetic workloads remain the default.

use std::io::{self, BufRead, Write};

use crate::alphabet::Alphabet;
use crate::error::BioseqError;
use crate::sequence::Sequence;

/// How to treat residue letters outside the target alphabet (FASTA ambiguity
/// codes such as `N`, `X`, `B`, `Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownResiduePolicy {
    /// Fail parsing with [`BioseqError::UnknownResidue`].
    Reject,
    /// Silently drop the residue.
    Skip,
    /// Substitute a fixed residue (e.g. map everything unknown to `A`).
    Replace(char),
}

/// Parse FASTA text into sequences encoded with `alphabet`.
///
/// * Lines starting with `>` begin a new record; the rest of the line is the
///   record name.
/// * `;` comment lines and blank lines are ignored.
/// * Residue characters are encoded per `policy`.
///
/// ```
/// use oasis_bioseq::{parse_fasta, Alphabet, UnknownResiduePolicy};
/// let fasta = ">s1 demo\nACGT\nAC\n>s2\nGGGG\n";
/// let seqs = parse_fasta(
///     fasta.as_bytes(),
///     &Alphabet::dna(),
///     UnknownResiduePolicy::Reject,
/// ).unwrap();
/// assert_eq!(seqs.len(), 2);
/// assert_eq!(seqs[0].name(), "s1 demo");
/// assert_eq!(seqs[0].len(), 6);
/// ```
pub fn parse_fasta<R: BufRead>(
    mut reader: R,
    alphabet: &Alphabet,
    policy: UnknownResiduePolicy,
) -> Result<Vec<Sequence>, BioseqError> {
    let mut out: Vec<Sequence> = Vec::new();
    let mut name: Option<String> = None;
    let mut codes: Vec<u8> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut global_offset = 0usize;

    let mut flush = |name: &mut Option<String>, codes: &mut Vec<u8>| -> Result<(), BioseqError> {
        if let Some(n) = name.take() {
            if codes.is_empty() {
                return Err(BioseqError::EmptySequence { name: n });
            }
            out.push(Sequence::from_codes(n, std::mem::take(codes)));
        }
        Ok(())
    };

    loop {
        line.clear();
        // An I/O failure (device error, non-UTF-8 bytes) is reported as
        // exactly that — not misdiagnosed as malformed FASTA.
        let read = reader.read_line(&mut line).map_err(|e| BioseqError::Io {
            kind: e.kind(),
            line: line_no + 1,
        })?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            global_offset += line.len();
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            flush(&mut name, &mut codes)?;
            name = Some(header.trim().to_string());
        } else {
            if name.is_none() {
                return Err(BioseqError::MissingHeader { line: line_no });
            }
            // `char_indices` yields byte offsets, keeping the reported
            // offset a true byte offset on lines with multi-byte
            // characters (a char index would drift after the first one).
            for (i, ch) in trimmed.char_indices() {
                match alphabet.encode_char(ch) {
                    Some(c) => codes.push(c),
                    None => match policy {
                        UnknownResiduePolicy::Reject => {
                            return Err(BioseqError::UnknownResidue {
                                ch,
                                offset: global_offset + i,
                            })
                        }
                        UnknownResiduePolicy::Skip => {}
                        UnknownResiduePolicy::Replace(r) => {
                            let c = alphabet.encode_char(r).expect(
                                "UnknownResiduePolicy::Replace character must be in the alphabet",
                            );
                            codes.push(c);
                        }
                    },
                }
            }
        }
        global_offset += line.len();
    }
    flush(&mut name, &mut codes)?;
    // `flush` moved `out` in; rebuild the return path explicitly.
    Ok(out)
}

/// Write sequences as FASTA with 60-column wrapping.
pub fn write_fasta<W: Write>(
    mut writer: W,
    alphabet: &Alphabet,
    sequences: &[Sequence],
) -> io::Result<()> {
    for seq in sequences {
        writeln!(writer, ">{}", seq.name())?;
        let text = seq.to_text(alphabet);
        for chunk in text.as_bytes().chunks(60) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Vec<Sequence>, BioseqError> {
        parse_fasta(s.as_bytes(), &Alphabet::dna(), UnknownResiduePolicy::Reject)
    }

    #[test]
    fn basic_two_records() {
        let seqs = parse(">a\nACGT\n>b\nGG\nTT\n").unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].name(), "a");
        assert_eq!(seqs[0].codes(), &[0, 1, 2, 3]);
        assert_eq!(seqs[1].name(), "b");
        assert_eq!(seqs[1].len(), 4);
    }

    #[test]
    fn blank_and_comment_lines_ignored() {
        let seqs = parse(">a\n;comment\n\nAC\n\nGT\n").unwrap();
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].len(), 4);
    }

    #[test]
    fn data_before_header_is_error() {
        assert!(matches!(
            parse("ACGT\n"),
            Err(BioseqError::MissingHeader { line: 1 })
        ));
    }

    #[test]
    fn empty_record_is_error() {
        assert!(matches!(
            parse(">a\n>b\nAC\n"),
            Err(BioseqError::EmptySequence { .. })
        ));
        assert!(matches!(
            parse(">only\n"),
            Err(BioseqError::EmptySequence { .. })
        ));
    }

    #[test]
    fn unknown_policy_reject() {
        assert!(matches!(
            parse(">a\nACNG\n"),
            Err(BioseqError::UnknownResidue { ch: 'N', .. })
        ));
    }

    #[test]
    fn unknown_policy_skip() {
        let seqs = parse_fasta(
            ">a\nACNNGT\n".as_bytes(),
            &Alphabet::dna(),
            UnknownResiduePolicy::Skip,
        )
        .unwrap();
        assert_eq!(seqs[0].codes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn unknown_policy_replace() {
        let seqs = parse_fasta(
            ">a\nACNGT\n".as_bytes(),
            &Alphabet::dna(),
            UnknownResiduePolicy::Replace('A'),
        )
        .unwrap();
        assert_eq!(seqs[0].codes(), &[0, 1, 0, 2, 3]);
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let a = Alphabet::protein();
        let long: String = "ARNDCQEGHILKMFPSTWYV".repeat(7); // 140 residues
        let seqs = vec![
            Sequence::from_str("long protein", &long, &a).unwrap(),
            Sequence::from_str("short", "WW", &a).unwrap(),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &a, &seqs).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // 140 residues wrap to 60+60+20.
        assert!(text.contains("\n>short\n"));
        assert!(text.lines().all(|l| l.len() <= 60 || l.starts_with('>')));
        let back = parse_fasta(&buf[..], &a, UnknownResiduePolicy::Reject).unwrap();
        assert_eq!(back, seqs);
    }

    #[test]
    fn header_whitespace_trimmed() {
        let seqs = parse(">  padded name \nAC\n").unwrap();
        assert_eq!(seqs[0].name(), "padded name");
    }

    #[test]
    fn case_insensitive_residues() {
        let seqs = parse(">a\nacgt\n").unwrap();
        assert_eq!(seqs[0].codes(), &[0, 1, 2, 3]);
    }

    /// A reader that fails with a device-style error on its first read.
    struct FailReader;
    impl std::io::Read for FailReader {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "injected device failure",
            ))
        }
    }

    #[test]
    fn io_failure_reported_as_io_not_missing_header() {
        // Two good lines, then the device dies: the error must carry the
        // I/O kind and the line being read — not claim the FASTA was
        // malformed.
        use std::io::{BufReader, Cursor, Read};
        let reader = BufReader::new(Cursor::new(b">a\nAC\n".to_vec()).chain(FailReader));
        let err = parse_fasta(reader, &Alphabet::dna(), UnknownResiduePolicy::Reject).unwrap_err();
        assert_eq!(
            err,
            BioseqError::Io {
                kind: std::io::ErrorKind::TimedOut,
                line: 3,
            }
        );
    }

    #[test]
    fn invalid_utf8_reported_as_io_not_missing_header() {
        let bytes: &[u8] = b">a\nAC\xFFGT\n";
        let err = parse_fasta(bytes, &Alphabet::dna(), UnknownResiduePolicy::Reject).unwrap_err();
        assert_eq!(
            err,
            BioseqError::Io {
                kind: std::io::ErrorKind::InvalidData,
                line: 2,
            }
        );
    }

    #[test]
    fn unknown_residue_offset_is_byte_accurate_on_crlf() {
        // CRLF line endings count toward the byte offset: ">a\r\n" (4) +
        // "AC\r\n" (4) + "G" (1) puts the '!' at byte 9 of the input.
        let input = ">a\r\nAC\r\nG!T\r\n";
        let err = parse(input).unwrap_err();
        let BioseqError::UnknownResidue { ch, offset } = err else {
            panic!("expected UnknownResidue, got {err:?}");
        };
        assert_eq!(ch, '!');
        assert_eq!(offset, 9);
        assert_eq!(input.as_bytes()[offset], b'!');
    }

    #[test]
    fn unknown_residue_offset_is_byte_accurate_on_multibyte_lines() {
        // '€' is 3 bytes; the reported offset must index the byte stream
        // (the original input slices cleanly at it), not count chars.
        let input = ">a\nAC\u{20AC}GT\n";
        let err = parse(input).unwrap_err();
        let BioseqError::UnknownResidue { ch, offset } = err else {
            panic!("expected UnknownResidue, got {err:?}");
        };
        assert_eq!(ch, '\u{20AC}');
        assert_eq!(offset, 5);
        assert!(input[offset..].starts_with('\u{20AC}'));
    }
}
