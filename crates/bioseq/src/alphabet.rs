//! Symbol alphabets.
//!
//! An [`Alphabet`] is an ordered set of residue letters with a dense code
//! assignment (`letter -> code in 0..len`). The two alphabets the paper uses
//! are provided: the 4-letter nucleotide alphabet (Drosophila experiments)
//! and the 20-letter amino-acid alphabet (SWISS-PROT experiments).

use crate::error::BioseqError;

/// Sentinel code marking the end of a sequence inside a
/// [`crate::SequenceDatabase`] text.
///
/// This is the `$` "terminal symbol" of the paper's Figure 2. It is not a
/// member of any alphabet; alignment code must never score it and suffix-tree
/// paths terminate on it. The value is far outside any alphabet's code range
/// so accidental use as an index fails loudly in debug builds.
pub const TERMINATOR: u8 = 0xFF;

/// Which built-in alphabet a database was encoded with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphabetKind {
    /// 4-letter nucleotide alphabet `ACGT`.
    Dna,
    /// 20-letter amino-acid alphabet `ARNDCQEGHILKMFPSTWYV`.
    Protein,
}

/// An ordered residue alphabet with dense `u8` codes.
///
/// ```
/// use oasis_bioseq::Alphabet;
/// let aa = Alphabet::protein();
/// assert_eq!(aa.len(), 20);
/// let code = aa.encode_char('W').unwrap();
/// assert_eq!(aa.decode(code), 'W');
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    kind: AlphabetKind,
    /// Residue letters in code order (uppercase ASCII).
    letters: &'static [u8],
    /// ASCII byte -> code lookup; `NONE_CODE` marks unmapped bytes.
    code_of: [u8; 256],
}

const NONE_CODE: u8 = 0xFF;

/// The 20 canonical amino acids in the conventional NCBI matrix row order.
/// Substitution-matrix constants in `oasis-align` are laid out in exactly
/// this order, so the two crates must agree.
pub const PROTEIN_LETTERS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// Nucleotides in alphabetical order.
pub const DNA_LETTERS: &[u8; 4] = b"ACGT";

impl Alphabet {
    fn build(kind: AlphabetKind, letters: &'static [u8]) -> Self {
        let mut code_of = [NONE_CODE; 256];
        for (i, &b) in letters.iter().enumerate() {
            code_of[b as usize] = i as u8;
            code_of[b.to_ascii_lowercase() as usize] = i as u8;
        }
        Alphabet {
            kind,
            letters,
            code_of,
        }
    }

    /// The 4-letter DNA alphabet `ACGT`.
    pub fn dna() -> Self {
        Self::build(AlphabetKind::Dna, DNA_LETTERS)
    }

    /// The 20-letter protein alphabet in NCBI order `ARNDCQEGHILKMFPSTWYV`.
    pub fn protein() -> Self {
        Self::build(AlphabetKind::Protein, PROTEIN_LETTERS)
    }

    /// Construct the alphabet for a [`AlphabetKind`].
    pub fn of_kind(kind: AlphabetKind) -> Self {
        match kind {
            AlphabetKind::Dna => Self::dna(),
            AlphabetKind::Protein => Self::protein(),
        }
    }

    /// Which built-in alphabet this is.
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Number of residues in the alphabet.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Alphabets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The residue letters in code order.
    pub fn letters(&self) -> &'static [u8] {
        self.letters
    }

    /// Encode one ASCII character (case-insensitive).
    pub fn encode_char(&self, ch: char) -> Option<u8> {
        if !ch.is_ascii() {
            return None;
        }
        let c = self.code_of[ch as usize];
        (c != NONE_CODE).then_some(c)
    }

    /// Encode one ASCII byte (case-insensitive).
    pub fn encode_byte(&self, b: u8) -> Option<u8> {
        let c = self.code_of[b as usize];
        (c != NONE_CODE).then_some(c)
    }

    /// Encode a string into fresh code vector, failing on the first unknown
    /// residue.
    pub fn encode_str(&self, s: &str) -> Result<Vec<u8>, BioseqError> {
        let mut out = Vec::with_capacity(s.len());
        for (offset, ch) in s.chars().enumerate() {
            match self.encode_char(ch) {
                Some(c) => out.push(c),
                None => return Err(BioseqError::UnknownResidue { ch, offset }),
            }
        }
        Ok(out)
    }

    /// Decode one code back to its uppercase letter.
    ///
    /// The terminator decodes to `'$'` to match the paper's figures.
    ///
    /// # Panics
    /// Panics if `code` is neither a valid residue code nor [`TERMINATOR`].
    pub fn decode(&self, code: u8) -> char {
        if code == TERMINATOR {
            return '$';
        }
        assert!(
            (code as usize) < self.letters.len(),
            "code {code} out of range for {:?} alphabet",
            self.kind
        );
        self.letters[code as usize] as char
    }

    /// Decode a code slice to a `String` (terminators render as `$`).
    pub fn decode_all(&self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.decode(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        let a = Alphabet::dna();
        assert_eq!(a.len(), 4);
        for (i, ch) in "ACGT".chars().enumerate() {
            assert_eq!(a.encode_char(ch), Some(i as u8));
            assert_eq!(a.decode(i as u8), ch);
        }
    }

    #[test]
    fn protein_roundtrip() {
        let a = Alphabet::protein();
        assert_eq!(a.len(), 20);
        for (i, &b) in PROTEIN_LETTERS.iter().enumerate() {
            assert_eq!(a.encode_byte(b), Some(i as u8));
            assert_eq!(a.decode(i as u8), b as char);
        }
    }

    #[test]
    fn case_insensitive_encoding() {
        let a = Alphabet::protein();
        assert_eq!(a.encode_char('w'), a.encode_char('W'));
        let d = Alphabet::dna();
        assert_eq!(d.encode_char('a'), Some(0));
    }

    #[test]
    fn unknown_residues_rejected() {
        let d = Alphabet::dna();
        assert_eq!(d.encode_char('N'), None);
        assert_eq!(d.encode_char('$'), None);
        assert_eq!(d.encode_char('€'), None);
        let p = Alphabet::protein();
        // B, J, O, U, X, Z are not canonical residues.
        for ch in "BJOUXZ".chars() {
            assert_eq!(p.encode_char(ch), None, "{ch} should be unmapped");
        }
    }

    #[test]
    fn encode_str_reports_offset() {
        let d = Alphabet::dna();
        let err = d.encode_str("ACGTN").unwrap_err();
        assert_eq!(err, BioseqError::UnknownResidue { ch: 'N', offset: 4 });
    }

    #[test]
    fn terminator_decodes_as_dollar() {
        let d = Alphabet::dna();
        assert_eq!(d.decode(TERMINATOR), '$');
        assert_eq!(d.decode_all(&[0, 2, TERMINATOR]), "AG$");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        Alphabet::dna().decode(4);
    }

    #[test]
    fn of_kind_matches_constructors() {
        assert_eq!(Alphabet::of_kind(AlphabetKind::Dna), Alphabet::dna());
        assert_eq!(
            Alphabet::of_kind(AlphabetKind::Protein),
            Alphabet::protein()
        );
    }

    #[test]
    fn terminator_outside_all_code_ranges() {
        assert!(TERMINATOR as usize >= Alphabet::protein().len());
        assert!(TERMINATOR as usize >= Alphabet::dna().len());
    }
}
