#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # oasis-bioseq
//!
//! Biological-sequence primitives for the OASIS reproduction: alphabets,
//! encoded sequences, the multi-sequence database that the suffix tree and
//! the search algorithms operate on, and FASTA import/export.
//!
//! Design notes:
//!
//! * Residues are stored as dense `u8` *codes* in `0..alphabet.len()`, never
//!   as ASCII. This keeps substitution-matrix lookups branch-free and lets
//!   the suffix-tree machinery work over small integer alphabets.
//! * A [`SequenceDatabase`] concatenates all sequences into one text with a
//!   [`TERMINATOR`] code after each sequence, exactly as the paper's
//!   generalized suffix tree expects (§2.3: "indexing multiple sequences by
//!   appending the terminal symbol to each sequence").
//! * Every public type is deterministic and `Send + Sync`; there is no
//!   global state.

pub mod alphabet;
pub mod binio;
pub mod database;
pub mod error;
pub mod fasta;
pub mod sequence;

pub use alphabet::{Alphabet, AlphabetKind, TERMINATOR};
pub use binio::{read_database, write_database, BinIoError};
pub use database::{DatabaseBuilder, SeqId, SequenceDatabase, SequenceView};
pub use error::BioseqError;
pub use fasta::{parse_fasta, write_fasta, UnknownResiduePolicy};
pub use sequence::Sequence;
