//! Binary serialization of a [`SequenceDatabase`].
//!
//! The on-disk suffix-tree index (in `oasis-storage`) stores the text and
//! sequence boundaries but not names or the alphabet, so a search tool must
//! reload the database itself. Re-parsing FASTA on every query is wasteful;
//! this compact binary sidecar loads with two bulk reads.
//!
//! Layout (little-endian):
//!
//! ```text
//!   magic  "OASISDB1"                      8 bytes
//!   kind   0 = DNA, 1 = protein            1 byte
//!   nseq   u32
//!   textlen u32
//!   starts  (nseq + 1) × u32
//!   text    textlen bytes (codes + terminators)
//!   names   nseq × (u32 length + utf-8 bytes)
//! ```

use std::io::{self, Read, Write};

use crate::alphabet::{Alphabet, AlphabetKind, TERMINATOR};
use crate::database::{DatabaseBuilder, SequenceDatabase};
use crate::sequence::Sequence;

const MAGIC: &[u8; 8] = b"OASISDB1";

/// Errors while reading a binary database.
#[derive(Debug)]
pub enum BinIoError {
    /// The magic bytes did not match.
    BadMagic,
    /// Structural inconsistency (bad counts, codes out of range, …).
    Corrupt(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for BinIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinIoError::BadMagic => write!(f, "not an OASIS database (bad magic)"),
            BinIoError::Corrupt(what) => write!(f, "corrupt database: {what}"),
            BinIoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for BinIoError {}

impl From<io::Error> for BinIoError {
    fn from(e: io::Error) -> Self {
        BinIoError::Io(e)
    }
}

/// Write `db` in the binary sidecar format.
pub fn write_database<W: Write>(mut w: W, db: &SequenceDatabase) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let kind = match db.alphabet_kind() {
        AlphabetKind::Dna => 0u8,
        AlphabetKind::Protein => 1u8,
    };
    w.write_all(&[kind])?;
    let nseq = db.num_sequences();
    w.write_all(&nseq.to_le_bytes())?;
    w.write_all(&db.text_len().to_le_bytes())?;
    for i in 0..=nseq {
        let start = if i == nseq {
            db.text_len()
        } else {
            db.seq_start(i)
        };
        w.write_all(&start.to_le_bytes())?;
    }
    w.write_all(db.text())?;
    for i in 0..nseq {
        let name = db.name(i).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
    }
    Ok(())
}

/// Read a database written by [`write_database`], with structural checks.
pub fn read_database<R: Read>(mut r: R) -> Result<SequenceDatabase, BinIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinIoError::BadMagic);
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let alphabet = match kind[0] {
        0 => Alphabet::dna(),
        1 => Alphabet::protein(),
        _ => return Err(BinIoError::Corrupt("unknown alphabet kind")),
    };
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let nseq = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf4)?;
    let text_len = u32::from_le_bytes(buf4) as usize;
    if (nseq as usize) > text_len {
        return Err(BinIoError::Corrupt("more sequences than symbols"));
    }
    let mut starts = Vec::with_capacity(nseq as usize + 1);
    for _ in 0..=nseq {
        r.read_exact(&mut buf4)?;
        starts.push(u32::from_le_bytes(buf4));
    }
    if starts.last().copied() != Some(text_len as u32) {
        return Err(BinIoError::Corrupt("start table does not span the text"));
    }
    let mut text = vec![0u8; text_len];
    r.read_exact(&mut text)?;

    let mut builder = DatabaseBuilder::new(alphabet.clone());
    for i in 0..nseq as usize {
        let start = starts[i] as usize;
        let end = starts[i + 1] as usize;
        if end <= start || end > text_len {
            return Err(BinIoError::Corrupt("sequence bounds out of order"));
        }
        if text[end - 1] != TERMINATOR {
            return Err(BinIoError::Corrupt("sequence not terminator-delimited"));
        }
        let codes = &text[start..end - 1];
        if codes.iter().any(|&c| c as usize >= alphabet.len()) {
            return Err(BinIoError::Corrupt("residue code out of range"));
        }
        builder
            .push(Sequence::from_codes(String::new(), codes.to_vec()))
            .map_err(|_| BinIoError::Corrupt("database exceeds addressing limits"))?;
    }
    let mut db = builder.finish();
    // Names.
    let mut names = Vec::with_capacity(nseq as usize);
    for _ in 0..nseq {
        r.read_exact(&mut buf4)?;
        let len = u32::from_le_bytes(buf4) as usize;
        if len > 1 << 20 {
            return Err(BinIoError::Corrupt("implausible name length"));
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        names.push(String::from_utf8(name).map_err(|_| BinIoError::Corrupt("name is not utf-8"))?);
    }
    db.set_names(names)
        .map_err(|_| BinIoError::Corrupt("name count mismatch"))?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::protein());
        b.push_str("sp|P1|FIRST", "MKTAYIAKQR").unwrap();
        b.push_str("sp|P2|SECOND", "WWCC").unwrap();
        b.push_str("", "A").unwrap(); // empty name is legal
        b.finish()
    }

    #[test]
    fn roundtrip() {
        let db = sample();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        let back = read_database(&buf[..]).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.name(0), "sp|P1|FIRST");
        assert_eq!(back.name(2), "");
    }

    #[test]
    fn roundtrip_dna() {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("chr1", "ACGTACGT").unwrap();
        let db = b.finish();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        assert_eq!(read_database(&buf[..]).unwrap(), db);
    }

    #[test]
    fn bad_magic_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(read_database(&buf[..]), Err(BinIoError::BadMagic)));
    }

    #[test]
    fn truncations_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        for keep in [0, 8, 9, 13, 20, buf.len() - 1] {
            let short = &buf[..keep];
            assert!(read_database(short).is_err(), "truncated to {keep}");
        }
    }

    #[test]
    fn corrupt_codes_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        // First text byte lives right after header + starts table.
        let text_at = 8 + 1 + 4 + 4 + 4 * (db.num_sequences() as usize + 1);
        buf[text_at] = 200; // not a residue, not a terminator
        assert!(matches!(
            read_database(&buf[..]),
            Err(BinIoError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_kind_rejected() {
        let db = sample();
        let mut buf = Vec::new();
        write_database(&mut buf, &db).unwrap();
        buf[8] = 9;
        assert!(matches!(
            read_database(&buf[..]),
            Err(BinIoError::Corrupt(_))
        ));
    }
}
