//! Error types for sequence encoding and parsing.

use std::fmt;

/// Errors raised while encoding residues or parsing sequence files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BioseqError {
    /// Reading the input itself failed (disk error, or a byte stream that
    /// is not valid UTF-8). Distinct from malformed-but-readable FASTA:
    /// an I/O failure says nothing about the file's format.
    Io {
        /// The [`std::io::ErrorKind`] of the underlying failure.
        kind: std::io::ErrorKind,
        /// Line number (1-based) being read when the failure occurred.
        line: usize,
    },
    /// A character could not be mapped onto the active alphabet.
    UnknownResidue {
        /// The offending character.
        ch: char,
        /// Byte offset in the input where it was seen.
        offset: usize,
    },
    /// A FASTA record had no header line.
    MissingHeader {
        /// Line number (1-based) where sequence data appeared before any `>`.
        line: usize,
    },
    /// A FASTA record had a header but no residues.
    EmptySequence {
        /// The record's name.
        name: String,
    },
    /// The database would exceed the 2^31-1 symbol addressing limit.
    ///
    /// Positions are stored as `u32` with the high bit reserved for
    /// leaf/internal tagging in the suffix-tree node handles, so a single
    /// database is limited to 2 GiB of symbols (the paper's largest data set
    /// is 120M symbols).
    TooLarge {
        /// The attempted total size in symbols (including terminators).
        attempted: u64,
    },
}

impl fmt::Display for BioseqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BioseqError::Io { kind, line } => {
                write!(f, "I/O error reading sequence data at line {line}: {kind}")
            }
            BioseqError::UnknownResidue { ch, offset } => {
                write!(f, "unknown residue {ch:?} at byte offset {offset}")
            }
            BioseqError::MissingHeader { line } => {
                write!(
                    f,
                    "FASTA sequence data before any '>' header at line {line}"
                )
            }
            BioseqError::EmptySequence { name } => {
                write!(f, "FASTA record {name:?} contains no residues")
            }
            BioseqError::TooLarge { attempted } => {
                write!(
                    f,
                    "database of {attempted} symbols exceeds the 2^31-1 addressing limit"
                )
            }
        }
    }
}

impl std::error::Error for BioseqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BioseqError::Io {
            kind: std::io::ErrorKind::InvalidData,
            line: 4,
        };
        assert!(e.to_string().contains("I/O error"));
        assert!(e.to_string().contains("line 4"));

        let e = BioseqError::UnknownResidue { ch: '!', offset: 7 };
        assert!(e.to_string().contains('!'));
        assert!(e.to_string().contains('7'));

        let e = BioseqError::MissingHeader { line: 3 };
        assert!(e.to_string().contains("line 3"));

        let e = BioseqError::EmptySequence {
            name: "sp|P1".into(),
        };
        assert!(e.to_string().contains("sp|P1"));

        let e = BioseqError::TooLarge { attempted: 1 << 40 };
        assert!(e.to_string().contains("addressing limit"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<BioseqError>();
    }
}
