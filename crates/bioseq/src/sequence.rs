//! A single named, encoded sequence.

use crate::alphabet::Alphabet;
use crate::error::BioseqError;

/// One biological sequence: a name plus residues encoded as alphabet codes.
///
/// `Sequence` is the unit of FASTA parsing and of database construction; the
/// search algorithms themselves work on [`crate::SequenceDatabase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    codes: Vec<u8>,
}

impl Sequence {
    /// Create a sequence from pre-encoded codes.
    ///
    /// Codes are not validated against any alphabet here; use
    /// [`Sequence::from_str`] for checked construction from text.
    pub fn from_codes(name: impl Into<String>, codes: Vec<u8>) -> Self {
        Sequence {
            name: name.into(),
            codes,
        }
    }

    /// Create a sequence by encoding `residues` with `alphabet`.
    pub fn from_str(
        name: impl Into<String>,
        residues: &str,
        alphabet: &Alphabet,
    ) -> Result<Self, BioseqError> {
        Ok(Sequence {
            name: name.into(),
            codes: alphabet.encode_str(residues)?,
        })
    }

    /// The sequence's name (FASTA header without the `>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoded residues.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Render the residues back to text using `alphabet`.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        alphabet.decode_all(&self.codes)
    }

    /// Consume the sequence, returning `(name, codes)`.
    pub fn into_parts(self) -> (String, Vec<u8>) {
        (self.name, self.codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_roundtrip() {
        let a = Alphabet::dna();
        let s = Sequence::from_str("chr1", "ACGTAC", &a).unwrap();
        assert_eq!(s.name(), "chr1");
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        assert_eq!(s.to_text(&a), "ACGTAC");
    }

    #[test]
    fn from_str_rejects_bad_residue() {
        let a = Alphabet::dna();
        assert!(Sequence::from_str("x", "ACGU", &a).is_err());
    }

    #[test]
    fn into_parts() {
        let s = Sequence::from_codes("n", vec![1, 2, 3]);
        let (name, codes) = s.into_parts();
        assert_eq!(name, "n");
        assert_eq!(codes, vec![1, 2, 3]);
    }

    #[test]
    fn empty_sequence_is_empty() {
        let s = Sequence::from_codes("e", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
