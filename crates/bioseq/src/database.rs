//! The multi-sequence database.
//!
//! All sequences are concatenated into a single code text with a
//! [`TERMINATOR`] after each sequence:
//!
//! ```text
//!   s0[0] s0[1] ... s0[l0-1] $ s1[0] ... $ ... s{k-1}[..] $
//! ```
//!
//! This is the layout the paper's generalized suffix tree indexes (§2.3) and
//! the layout its disk representation stores verbatim in the "symbols" array
//! (§3.4). Every search-side structure addresses residues by their *global*
//! position in this text; [`SequenceDatabase::seq_of_position`] maps a global
//! position back to its sequence.

use crate::alphabet::{Alphabet, AlphabetKind, TERMINATOR};
use crate::error::BioseqError;
use crate::sequence::Sequence;

/// Index of a sequence within a database.
pub type SeqId = u32;

/// Maximum total text length (symbols + terminators).
///
/// One bit of the 32-bit position space is reserved for tagging leaf vs
/// internal suffix-tree handles downstream.
pub const MAX_TEXT_LEN: u64 = (1 << 31) - 1;

/// An immutable multi-sequence database over one alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceDatabase {
    alphabet: Alphabet,
    /// Concatenated codes, one TERMINATOR after each sequence.
    text: Vec<u8>,
    /// Start offset of each sequence in `text`; an extra sentinel entry at
    /// the end equals `text.len()` so `starts[i+1] - 1` is sequence `i`'s
    /// terminator position.
    starts: Vec<u32>,
    names: Vec<String>,
}

/// A borrowed view of one sequence inside a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceView<'a> {
    /// The sequence's id.
    pub id: SeqId,
    /// The sequence's name.
    pub name: &'a str,
    /// Residue codes (terminator excluded).
    pub codes: &'a [u8],
    /// Global position of the first residue.
    pub start: u32,
}

impl SequenceDatabase {
    /// Build a database from sequences. Empty sequences are permitted (they
    /// contribute just a terminator) but are unusual; FASTA parsing rejects
    /// them earlier.
    pub fn new(alphabet: Alphabet, sequences: Vec<Sequence>) -> Result<Self, BioseqError> {
        let mut builder = DatabaseBuilder::new(alphabet);
        for s in sequences {
            builder.push(s)?;
        }
        Ok(builder.finish())
    }

    /// The database's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Convenience: the alphabet's kind.
    pub fn alphabet_kind(&self) -> AlphabetKind {
        self.alphabet.kind()
    }

    /// The full concatenated text, terminators included.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Total text length including terminators.
    pub fn text_len(&self) -> u32 {
        self.text.len() as u32
    }

    /// Total number of residues (terminators excluded).
    pub fn total_residues(&self) -> u64 {
        (self.text.len() - self.names.len()) as u64
    }

    /// Number of sequences.
    pub fn num_sequences(&self) -> u32 {
        self.names.len() as u32
    }

    /// Name of sequence `id`.
    pub fn name(&self, id: SeqId) -> &str {
        &self.names[id as usize]
    }

    /// Global start position of sequence `id`.
    pub fn seq_start(&self, id: SeqId) -> u32 {
        self.starts[id as usize]
    }

    /// Global position of sequence `id`'s terminator (one past its last
    /// residue).
    pub fn seq_terminator(&self, id: SeqId) -> u32 {
        self.starts[id as usize + 1] - 1
    }

    /// Residue count of sequence `id`.
    pub fn seq_len(&self, id: SeqId) -> u32 {
        self.seq_terminator(id) - self.seq_start(id)
    }

    /// Borrow sequence `id`.
    pub fn sequence(&self, id: SeqId) -> SequenceView<'_> {
        let start = self.seq_start(id);
        let term = self.seq_terminator(id);
        SequenceView {
            id,
            name: &self.names[id as usize],
            codes: &self.text[start as usize..term as usize],
            start,
        }
    }

    /// Iterate over all sequences.
    pub fn sequences(&self) -> impl Iterator<Item = SequenceView<'_>> + '_ {
        (0..self.num_sequences()).map(move |id| self.sequence(id))
    }

    /// Map a global text position to the sequence containing it.
    ///
    /// Positions holding a terminator belong to the sequence they terminate.
    ///
    /// # Panics
    /// Panics if `pos >= text_len()`.
    pub fn seq_of_position(&self, pos: u32) -> SeqId {
        assert!((pos as usize) < self.text.len(), "position out of range");
        // partition_point returns the first sequence whose start is > pos;
        // the containing sequence is the one before it.
        let idx = self.starts.partition_point(|&s| s <= pos);
        (idx - 1) as SeqId
    }

    /// The terminator position of the sequence containing `pos` — i.e. where
    /// a suffix beginning at `pos` ends (inclusive of the terminator).
    pub fn suffix_end(&self, pos: u32) -> u32 {
        self.seq_terminator(self.seq_of_position(pos))
    }

    /// Replace all sequence names (used by binary deserialization).
    /// Fails if the count does not match.
    pub(crate) fn set_names(&mut self, names: Vec<String>) -> Result<(), ()> {
        if names.len() != self.names.len() {
            return Err(());
        }
        self.names = names;
        Ok(())
    }

    /// Decode an arbitrary global range to text (`$` for terminators).
    pub fn decode_range(&self, start: u32, end: u32) -> String {
        self.alphabet
            .decode_all(&self.text[start as usize..end as usize])
    }
}

/// Incremental builder for a [`SequenceDatabase`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    alphabet: Alphabet,
    text: Vec<u8>,
    starts: Vec<u32>,
    names: Vec<String>,
}

impl DatabaseBuilder {
    /// Start an empty database over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        DatabaseBuilder {
            alphabet,
            text: Vec::new(),
            starts: vec![0],
            names: Vec::new(),
        }
    }

    /// Append one sequence.
    pub fn push(&mut self, seq: Sequence) -> Result<SeqId, BioseqError> {
        let (name, codes) = seq.into_parts();
        debug_assert!(
            codes.iter().all(|&c| (c as usize) < self.alphabet.len()),
            "sequence {name:?} contains codes outside the alphabet"
        );
        let attempted = self.text.len() as u64 + codes.len() as u64 + 1;
        if attempted > MAX_TEXT_LEN {
            return Err(BioseqError::TooLarge { attempted });
        }
        let id = self.names.len() as SeqId;
        self.text.extend_from_slice(&codes);
        self.text.push(TERMINATOR);
        self.starts.push(self.text.len() as u32);
        self.names.push(name);
        Ok(id)
    }

    /// Encode and append one text sequence.
    pub fn push_str(
        &mut self,
        name: impl Into<String>,
        residues: &str,
    ) -> Result<SeqId, BioseqError> {
        let seq = Sequence::from_str(name, residues, &self.alphabet)?;
        self.push(seq)
    }

    /// Number of sequences added so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no sequences were added yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Finish building.
    pub fn finish(self) -> SequenceDatabase {
        SequenceDatabase {
            alphabet: self.alphabet,
            text: self.text,
            starts: self.starts,
            names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(seqs: &[&str]) -> SequenceDatabase {
        let a = Alphabet::dna();
        let mut b = DatabaseBuilder::new(a);
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("seq{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn layout_matches_paper_example() {
        // The paper's running example sequence (Figure 2).
        let d = db(&["AGTACGCCTAG"]);
        assert_eq!(d.text_len(), 12); // 11 residues + terminator
        assert_eq!(d.total_residues(), 11);
        assert_eq!(d.text()[11], TERMINATOR);
        assert_eq!(d.decode_range(0, 12), "AGTACGCCTAG$");
    }

    #[test]
    fn multi_sequence_layout() {
        let d = db(&["ACGT", "GG", "T"]);
        assert_eq!(d.num_sequences(), 3);
        assert_eq!(d.text_len(), 4 + 1 + 2 + 1 + 1 + 1);
        assert_eq!(d.seq_start(0), 0);
        assert_eq!(d.seq_terminator(0), 4);
        assert_eq!(d.seq_start(1), 5);
        assert_eq!(d.seq_terminator(1), 7);
        assert_eq!(d.seq_start(2), 8);
        assert_eq!(d.seq_terminator(2), 9);
        assert_eq!(d.seq_len(1), 2);
        assert_eq!(d.name(2), "seq2");
    }

    #[test]
    fn seq_of_position_covers_every_position() {
        let d = db(&["ACGT", "GG", "T"]);
        let expect = [0, 0, 0, 0, 0, 1, 1, 1, 2, 2];
        for (pos, &want) in expect.iter().enumerate() {
            assert_eq!(d.seq_of_position(pos as u32), want, "pos {pos}");
        }
    }

    #[test]
    fn suffix_end_is_own_terminator() {
        let d = db(&["ACGT", "GG"]);
        assert_eq!(d.suffix_end(0), 4);
        assert_eq!(d.suffix_end(3), 4);
        assert_eq!(d.suffix_end(5), 7);
        assert_eq!(d.suffix_end(6), 7);
    }

    #[test]
    #[should_panic(expected = "position out of range")]
    fn seq_of_position_out_of_range_panics() {
        db(&["A"]).seq_of_position(2);
    }

    #[test]
    fn sequence_views() {
        let d = db(&["ACGT", "GG"]);
        let v: Vec<_> = d.sequences().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].name, "seq0");
        assert_eq!(v[0].codes, &[0, 1, 2, 3]);
        assert_eq!(v[1].start, 5);
        assert_eq!(v[1].codes, &[2, 2]);
    }

    #[test]
    fn builder_len_tracking() {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        assert!(b.is_empty());
        b.push_str("a", "ACG").unwrap();
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_sequence_permitted_in_database() {
        let d = SequenceDatabase::new(
            Alphabet::dna(),
            vec![
                Sequence::from_codes("empty", vec![]),
                Sequence::from_codes("one", vec![0]),
            ],
        )
        .unwrap();
        assert_eq!(d.seq_len(0), 0);
        assert_eq!(d.seq_len(1), 1);
        assert_eq!(d.seq_of_position(0), 0); // the terminator of seq 0
        assert_eq!(d.seq_of_position(1), 1);
    }

    #[test]
    fn decode_range_crosses_boundaries() {
        let d = db(&["AC", "GT"]);
        assert_eq!(d.decode_range(0, 6), "AC$GT$");
    }
}
