#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # oasis-blast
//!
//! A clean-room BLAST-like heuristic baseline, built so the paper's
//! comparative experiments (Figures 3, 5, 6, 9) can run without the NCBI
//! binary. It follows the classic blastp/blastn pipeline:
//!
//! 1. **Word seeding** — the query is "transformed into a set of
//!    fixed-length words that are matched against the database" (§1): every
//!    database word scoring at least `T` against some query word (the
//!    *neighborhood*) seeds a hit.
//! 2. **Two-hit triggering** (optional, BLAST 2.0 style) — extension fires
//!    only when two non-overlapping hits land on one diagonal within a
//!    window.
//! 3. **Ungapped X-drop extension** — seeds are "extended to the left and
//!    the right" until the running score drops `X` below the best.
//! 4. **Gapped extension** — promising ungapped extensions trigger a
//!    bounded local Smith-Waterman around the seed diagonal.
//! 5. **E-value filtering** — per-sequence best hits with
//!    `E ≤ threshold` are reported (Equation 2).
//!
//! Because seeding requires a surviving `w`-mer, BLAST *misses* remote
//! homologs whose best alignment contains no high-scoring word — exactly
//! the inaccuracy OASIS eliminates and Figure 5 quantifies.

pub mod params;
pub mod search;
pub mod words;

pub use params::{BlastParams, SeedMode};
pub use search::{BlastHit, BlastSearch, BlastStats};
pub use words::WordIndex;
