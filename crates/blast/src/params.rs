//! BLAST tuning parameters.

use oasis_align::Score;

/// One-hit (BLAST 1.4) or two-hit (BLAST 2.0) seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Every neighborhood word hit triggers an extension.
    OneHit,
    /// Extension requires two non-overlapping hits on the same diagonal
    /// within `window` positions (faster, slightly less sensitive).
    TwoHit {
        /// The diagonal window `A`.
        window: u32,
    },
}

/// Heuristic-search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlastParams {
    /// Word length `w` (3 for proteins, 11 for nucleotides).
    pub word_size: usize,
    /// Neighborhood threshold `T`: a database word seeds a query word when
    /// their pairwise score is at least `T`.
    pub threshold: Score,
    /// Ungapped X-drop: extension stops once the running score falls this
    /// far below the best seen.
    pub x_drop: Score,
    /// Ungapped score that triggers a gapped extension.
    pub gap_trigger: Score,
    /// Seeding mode.
    pub seed_mode: SeedMode,
    /// Report alignments with E-value at most this.
    pub evalue: f64,
}

impl BlastParams {
    /// blastp-style defaults (word 3, T 11, two-hit window 40).
    pub fn protein() -> Self {
        BlastParams {
            word_size: 3,
            threshold: 11,
            x_drop: 16,
            gap_trigger: 22,
            seed_mode: SeedMode::TwoHit { window: 40 },
            evalue: 10.0,
        }
    }

    /// Short-query protein settings, as the BLAST program-selection guide
    /// recommends (§1 of the paper cites it): smaller words, lower
    /// threshold, one-hit seeding, and a relaxed E-value.
    pub fn short_protein() -> Self {
        BlastParams {
            word_size: 2,
            threshold: 16,
            x_drop: 16,
            gap_trigger: 18,
            seed_mode: SeedMode::OneHit,
            evalue: 20_000.0,
        }
    }

    /// blastn-style defaults: long exact words.
    pub fn dna() -> Self {
        BlastParams {
            word_size: 11,
            // With the unit matrix an 11-mer scores 11 only when identical.
            threshold: 11,
            x_drop: 10,
            gap_trigger: 14,
            seed_mode: SeedMode::OneHit,
            evalue: 10.0,
        }
    }

    /// Replace the E-value threshold.
    pub fn with_evalue(mut self, evalue: f64) -> Self {
        assert!(evalue > 0.0, "E-value threshold must be positive");
        self.evalue = evalue;
        self
    }

    /// Replace the word size.
    pub fn with_word_size(mut self, w: usize) -> Self {
        assert!(w >= 1, "word size must be at least 1");
        self.word_size = w;
        self
    }

    /// Replace the neighborhood threshold.
    pub fn with_threshold(mut self, t: Score) -> Self {
        self.threshold = t;
        self
    }

    /// Replace the seeding mode.
    pub fn with_seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = BlastParams::protein();
        assert_eq!(p.word_size, 3);
        assert!(matches!(p.seed_mode, SeedMode::TwoHit { window: 40 }));

        let s = BlastParams::short_protein();
        assert_eq!(s.word_size, 2);
        assert!(matches!(s.seed_mode, SeedMode::OneHit));
        assert!(s.evalue > 1000.0);

        let d = BlastParams::dna();
        assert_eq!(d.word_size, 11);
    }

    #[test]
    fn builder_methods() {
        let p = BlastParams::protein()
            .with_evalue(1.0)
            .with_word_size(4)
            .with_threshold(15)
            .with_seed_mode(SeedMode::OneHit);
        assert_eq!(p.evalue, 1.0);
        assert_eq!(p.word_size, 4);
        assert_eq!(p.threshold, 15);
        assert_eq!(p.seed_mode, SeedMode::OneHit);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_evalue_rejected() {
        BlastParams::protein().with_evalue(0.0);
    }
}
