//! The scan–extend–filter pipeline.

use oasis_align::{
    background_dna, background_protein, sw_best, KarlinParams, Score, Scoring, StatsError,
};
use oasis_bioseq::{AlphabetKind, SeqId, SequenceDatabase};

use crate::params::{BlastParams, SeedMode};
use crate::words::WordIndex;

/// One reported heuristic hit (per-sequence best).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlastHit {
    /// The database sequence.
    pub seq: SeqId,
    /// Best alignment score found by the heuristic for this sequence.
    pub score: Score,
    /// E-value of that score.
    pub evalue: f64,
}

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlastStats {
    /// Word hits found while scanning.
    pub seeds: u64,
    /// Ungapped X-drop extensions performed.
    pub ungapped_extensions: u64,
    /// Gapped extensions performed.
    pub gapped_extensions: u64,
    /// DP cells computed during gapped extensions.
    pub gapped_cells: u64,
}

/// A BLAST-style searcher bound to one database and scoring scheme.
pub struct BlastSearch<'a> {
    db: &'a SequenceDatabase,
    scoring: &'a Scoring,
    params: BlastParams,
    karlin: KarlinParams,
}

impl<'a> BlastSearch<'a> {
    /// Create a searcher; Karlin-Altschul parameters are estimated from the
    /// scoring matrix and the standard background for the database alphabet.
    pub fn new(
        db: &'a SequenceDatabase,
        scoring: &'a Scoring,
        params: BlastParams,
    ) -> Result<Self, StatsError> {
        let karlin = match db.alphabet_kind() {
            AlphabetKind::Dna => KarlinParams::estimate(&scoring.matrix, &background_dna())?,
            AlphabetKind::Protein => {
                KarlinParams::estimate(&scoring.matrix, &background_protein())?
            }
        };
        Ok(BlastSearch {
            db,
            scoring,
            params,
            karlin,
        })
    }

    /// The Karlin-Altschul parameters in use.
    pub fn karlin(&self) -> &KarlinParams {
        &self.karlin
    }

    /// Run the heuristic search, returning per-sequence best hits with
    /// `E ≤ params.evalue`, sorted by descending score.
    pub fn search(&self, query: &[u8]) -> (Vec<BlastHit>, BlastStats) {
        let mut stats = BlastStats::default();
        let w = self.params.word_size;
        let index = WordIndex::build(query, &self.scoring.matrix, w, self.params.threshold);
        let mut hits = Vec::new();
        if index.num_words() == 0 {
            return (hits, stats); // query too short to seed: heuristic miss
        }
        let n = query.len();
        let m_len = query.len() as u64;
        let db_res = self.db.total_residues();

        // Per-diagonal state, reused across sequences. Diagonal id =
        // (t_pos - q_pos) + n ∈ [0, seq_len + n).
        let mut last_hit_end: Vec<i64> = Vec::new();
        let mut extended_to: Vec<i64> = Vec::new();

        for seq in self.db.sequences() {
            let codes = seq.codes;
            if codes.len() < w {
                continue;
            }
            let diagonals = codes.len() + n + 1;
            last_hit_end.clear();
            last_hit_end.resize(diagonals, i64::MIN);
            extended_to.clear();
            extended_to.resize(diagonals, i64::MIN);

            let mut best: Score = 0;
            for (t_pos, code) in index.scan(codes) {
                let Some(q_positions) = index.lookup(code) else {
                    continue;
                };
                for &q_pos in q_positions {
                    stats.seeds += 1;
                    let q_pos = q_pos as usize;
                    let diag = t_pos + n - q_pos;
                    // Skip seeds inside an already-extended region.
                    if (t_pos as i64) <= extended_to[diag] {
                        continue;
                    }
                    let trigger = match self.params.seed_mode {
                        SeedMode::OneHit => true,
                        SeedMode::TwoHit { window } => {
                            let s = t_pos as i64;
                            let prev = last_hit_end[diag];
                            if s < prev {
                                // Overlapping hit: keep the earlier end so a
                                // later non-overlapping hit can still pair
                                // with it.
                                false
                            } else {
                                let within = prev != i64::MIN && s - prev <= window as i64;
                                last_hit_end[diag] = s + w as i64;
                                within
                            }
                        }
                    };
                    if !trigger {
                        continue;
                    }
                    stats.ungapped_extensions += 1;
                    let ungapped = self.ungapped_extend(query, codes, q_pos, t_pos);
                    extended_to[diag] = (t_pos + w) as i64;
                    let score = if ungapped >= self.params.gap_trigger {
                        stats.gapped_extensions += 1;
                        self.gapped_extend(query, codes, q_pos, t_pos, &mut stats)
                    } else {
                        ungapped
                    };
                    best = best.max(score);
                }
            }
            if best > 0 {
                let evalue = self.karlin.evalue(m_len, db_res, best);
                if evalue <= self.params.evalue {
                    hits.push(BlastHit {
                        seq: seq.id,
                        score: best,
                        evalue,
                    });
                }
            }
        }
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.seq.cmp(&b.seq)));
        (hits, stats)
    }

    /// Ungapped X-drop extension of the word hit at `(q_pos, t_pos)`.
    fn ungapped_extend(&self, query: &[u8], target: &[u8], q_pos: usize, t_pos: usize) -> Score {
        let w = self.params.word_size;
        let x = self.params.x_drop;
        let seed: Score = (0..w)
            .map(|k| self.scoring.sub(query[q_pos + k], target[t_pos + k]))
            .sum();
        // Left of the seed.
        let mut best_left = 0;
        let mut run = 0;
        let mut qi = q_pos as i64 - 1;
        let mut ti = t_pos as i64 - 1;
        while qi >= 0 && ti >= 0 {
            run += self.scoring.sub(query[qi as usize], target[ti as usize]);
            if run > best_left {
                best_left = run;
            } else if run < best_left - x {
                break;
            }
            qi -= 1;
            ti -= 1;
        }
        // Right of the seed.
        let mut best_right = 0;
        let mut run = 0;
        let mut qi = q_pos + w;
        let mut ti = t_pos + w;
        while qi < query.len() && ti < target.len() {
            run += self.scoring.sub(query[qi], target[ti]);
            if run > best_right {
                best_right = run;
            } else if run < best_right - x {
                break;
            }
            qi += 1;
            ti += 1;
        }
        seed + best_left + best_right
    }

    /// Gapped extension: bounded local Smith-Waterman over a window of the
    /// target centred on the seed diagonal.
    fn gapped_extend(
        &self,
        query: &[u8],
        target: &[u8],
        q_pos: usize,
        t_pos: usize,
        stats: &mut BlastStats,
    ) -> Score {
        let n = query.len();
        let pad = n + 8;
        let lo = t_pos.saturating_sub(q_pos + pad);
        let hi = (t_pos + (n - q_pos) + pad).min(target.len());
        let window = &target[lo..hi];
        stats.gapped_cells += (window.len() * n) as u64;
        sw_best(query, window, self.scoring).score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_align::{GapModel, SubstitutionMatrix, SwScanner};
    use oasis_bioseq::{Alphabet, DatabaseBuilder};

    fn protein_db(seqs: &[&str]) -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::protein());
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("p{i}"), s).unwrap();
        }
        b.finish()
    }

    fn blosum() -> Scoring {
        Scoring::new(SubstitutionMatrix::blosum62(), GapModel::linear(-8))
    }

    #[test]
    fn finds_exact_planted_match() {
        let db = protein_db(&["MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ", "GGGGGGGGGGGGGGGGGG"]);
        let scoring = blosum();
        let params = BlastParams::protein().with_evalue(1e3);
        let search = BlastSearch::new(&db, &scoring, params).unwrap();
        let q = Alphabet::protein().encode_str("AKQRQISFVKSH").unwrap();
        let (hits, stats) = search.search(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 0);
        assert!(stats.seeds > 0);
        assert!(stats.ungapped_extensions > 0);
        // The exact region scores its self-score.
        let sw = SwScanner::new().scan(&db, &q, &scoring, 1);
        assert_eq!(hits[0].score, sw[0].hit.score);
    }

    #[test]
    fn heuristic_score_never_exceeds_sw() {
        let db = protein_db(&[
            "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
            "MKTAYLAKQRNISFVKSHFSRQDEERLGLIEVQ",
            "AAAAAAAAWWWAAAAAAA",
            "CCCCCCCCCCCC",
        ]);
        let scoring = blosum();
        let search =
            BlastSearch::new(&db, &scoring, BlastParams::protein().with_evalue(1e6)).unwrap();
        let q = Alphabet::protein().encode_str("AKQRQISFVKSH").unwrap();
        let (hits, _) = search.search(&q);
        let mut scanner = SwScanner::new();
        let sw = scanner.scan(&db, &q, &scoring, 1);
        for hit in &hits {
            let exact = sw.iter().find(|s| s.seq == hit.seq).unwrap();
            assert!(
                hit.score <= exact.hit.score,
                "seq {}: blast {} > sw {}",
                hit.seq,
                hit.score,
                exact.hit.score
            );
        }
    }

    #[test]
    fn misses_wordless_homolog() {
        // A target whose best alignment has no 3-mer scoring >= T: BLAST
        // finds nothing even though S-W finds a positive alignment. Query
        // and target alternate agreement/disagreement so no high-scoring
        // word survives.
        let db = protein_db(&["AGAGAGAGAGAGAGAG"]);
        let scoring = blosum();
        // Every word of query ACACACAC vs the target scores low.
        let q = Alphabet::protein().encode_str("ATATATAT").unwrap();
        let params = BlastParams::protein().with_evalue(1e9);
        let search = BlastSearch::new(&db, &scoring, params).unwrap();
        let (hits, _) = search.search(&q);
        let sw = SwScanner::new().scan(&db, &q, &scoring, 1);
        assert!(
            hits.len() < sw.len(),
            "heuristic should miss at least one S-W hit (blast {}, sw {})",
            hits.len(),
            sw.len()
        );
    }

    #[test]
    fn query_shorter_than_word_finds_nothing() {
        let db = protein_db(&["MKTAYIAKQRQISFVKSH"]);
        let scoring = blosum();
        let search = BlastSearch::new(&db, &scoring, BlastParams::protein()).unwrap();
        let q = Alphabet::protein().encode_str("MK").unwrap();
        let (hits, stats) = search.search(&q);
        assert!(hits.is_empty());
        assert_eq!(stats.seeds, 0);
    }

    #[test]
    fn two_hit_does_not_beat_one_hit() {
        let db = protein_db(&[
            "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
            "MKTAYLAKQRNISFVKSHFSRQDEERLGLIEVQ",
        ]);
        let scoring = blosum();
        let q = Alphabet::protein().encode_str("AKQRQISFVKSH").unwrap();
        let one = BlastSearch::new(
            &db,
            &scoring,
            BlastParams::protein()
                .with_seed_mode(SeedMode::OneHit)
                .with_evalue(1e6),
        )
        .unwrap();
        let two = BlastSearch::new(&db, &scoring, BlastParams::protein().with_evalue(1e6)).unwrap();
        let (one_hits, one_stats) = one.search(&q);
        let (two_hits, two_stats) = two.search(&q);
        // Two-hit performs at most as many ungapped extensions…
        assert!(two_stats.ungapped_extensions <= one_stats.ungapped_extensions);
        // …and finds a subset of the sequences.
        let one_seqs: Vec<SeqId> = one_hits.iter().map(|h| h.seq).collect();
        for h in &two_hits {
            assert!(one_seqs.contains(&h.seq));
        }
    }

    #[test]
    fn evalue_threshold_filters() {
        let db = protein_db(&[
            "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
            "WKTAAIAKQGGISFVKAHFSRQLEERLGLIEVQ",
        ]);
        let scoring = blosum();
        let q = Alphabet::protein().encode_str("AKQRQISFVKSH").unwrap();
        let loose =
            BlastSearch::new(&db, &scoring, BlastParams::protein().with_evalue(1e9)).unwrap();
        let strict =
            BlastSearch::new(&db, &scoring, BlastParams::protein().with_evalue(1e-12)).unwrap();
        let (loose_hits, _) = loose.search(&q);
        let (strict_hits, _) = strict.search(&q);
        assert!(strict_hits.len() <= loose_hits.len());
    }

    #[test]
    fn hits_sorted_by_score() {
        let db = protein_db(&[
            "WKTAAIAKQGGISFVKAHFSRQLEERLGLIEVQ",
            "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ",
            "MKTAYIAKQRQISAVKSHFSRQLEERLGLIEVQ",
        ]);
        let scoring = blosum();
        let q = Alphabet::protein().encode_str("AKQRQISFVKSH").unwrap();
        let search =
            BlastSearch::new(&db, &scoring, BlastParams::protein().with_evalue(1e9)).unwrap();
        let (hits, _) = search.search(&q);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn dna_word_seeding() {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("d0", "ACGTACGTACGTGGCCAAGGTTACGTACGTAA")
            .unwrap();
        b.push_str("d1", "TTTTTTTTTTTTTTTTTTTT").unwrap();
        let db = b.finish();
        let scoring = Scoring::unit_dna();
        let params = BlastParams::dna().with_evalue(1e6);
        let search = BlastSearch::new(&db, &scoring, params).unwrap();
        let q = Alphabet::dna().encode_str("ACGTACGTACGTGG").unwrap();
        let (hits, _) = search.search(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 0);
    }
}
