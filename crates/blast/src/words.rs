//! Query word list and neighborhood generation.
//!
//! For a query of length `n` and word size `w`, every window `q[p..p+w]`
//! contributes its *neighborhood*: all words `x ∈ Σ^w` with
//! `Σ_k S(x_k, q[p+k]) ≥ T`. The index maps each neighborhood word (encoded
//! as a radix-|Σ| integer) to the query offsets it seeds.

use std::collections::HashMap;

use oasis_align::{Score, SubstitutionMatrix};

/// Lookup table from database words to seeding query offsets.
#[derive(Debug, Clone)]
pub struct WordIndex {
    word_size: usize,
    alphabet_len: u32,
    /// word code -> query offsets whose neighborhood contains the word.
    map: HashMap<u32, Vec<u32>>,
}

impl WordIndex {
    /// Build the neighborhood index for `query`.
    ///
    /// Cost is bounded by branch-and-bound enumeration: a partial word is
    /// abandoned as soon as even perfect completion cannot reach `T`.
    pub fn build(
        query: &[u8],
        matrix: &SubstitutionMatrix,
        word_size: usize,
        threshold: Score,
    ) -> Self {
        assert!(word_size >= 1, "word size must be at least 1");
        let sigma = matrix.alphabet_len() as u32;
        assert!(
            (sigma as u64).pow(word_size as u32) < u32::MAX as u64,
            "word space must fit in u32"
        );
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        if query.len() < word_size {
            return WordIndex {
                word_size,
                alphabet_len: sigma,
                map,
            };
        }
        // Suffix maxima of per-position best scores, for the bound.
        for p in 0..=query.len() - word_size {
            let window = &query[p..p + word_size];
            let mut suffix_max = vec![0 as Score; word_size + 1];
            for k in (0..word_size).rev() {
                suffix_max[k] = suffix_max[k + 1] + matrix.row_max(window[k]);
            }
            // DFS over Σ^w with pruning.
            let mut stack: Vec<(usize, u32, Score)> = vec![(0, 0, 0)];
            while let Some((k, code, score)) = stack.pop() {
                if k == word_size {
                    if score >= threshold {
                        map.entry(code).or_default().push(p as u32);
                    }
                    continue;
                }
                for b in 0..sigma {
                    let s = score + matrix.score(window[k], b as u8);
                    if s + suffix_max[k + 1] >= threshold {
                        stack.push((k + 1, code * sigma + b, s));
                    }
                }
            }
        }
        WordIndex {
            word_size,
            alphabet_len: sigma,
            map,
        }
    }

    /// Word length.
    pub fn word_size(&self) -> usize {
        self.word_size
    }

    /// Number of distinct neighborhood words.
    pub fn num_words(&self) -> usize {
        self.map.len()
    }

    /// The query offsets seeded by `word_code`, if any.
    pub fn lookup(&self, word_code: u32) -> Option<&[u32]> {
        self.map.get(&word_code).map(|v| v.as_slice())
    }

    /// Encode a word (slice of `word_size` codes) into its radix code.
    pub fn encode(&self, word: &[u8]) -> u32 {
        debug_assert_eq!(word.len(), self.word_size);
        word.iter()
            .fold(0u32, |acc, &c| acc * self.alphabet_len + c as u32)
    }

    /// Rolling encoder over a code sequence: yields `(end_offset, code)` for
    /// every window.
    pub fn scan<'s>(&self, seq: &'s [u8]) -> impl Iterator<Item = (usize, u32)> + 's {
        let w = self.word_size;
        let sigma = self.alphabet_len;
        let modulus = sigma.pow(w as u32 - 1);
        let mut code = 0u32;
        seq.iter().enumerate().filter_map(move |(i, &c)| {
            code = (code % modulus) * sigma + c as u32;
            if i + 1 >= w {
                Some((i + 1 - w, code))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_align::SubstitutionMatrix;
    use oasis_bioseq::{Alphabet, AlphabetKind};

    fn protein(s: &str) -> Vec<u8> {
        Alphabet::protein().encode_str(s).unwrap()
    }

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::dna().encode_str(s).unwrap()
    }

    #[test]
    fn exact_words_always_in_neighborhood() {
        // With a high threshold equal to the self-score, only the exact
        // word survives.
        let q = dna("ACGT");
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let idx = WordIndex::build(&q, &m, 2, 2);
        // Self-score of every 2-mer under the unit matrix is 2.
        assert_eq!(idx.num_words(), 3); // AC, CG, GT
        assert_eq!(idx.lookup(idx.encode(&dna("AC"))), Some(&[0u32][..]));
        assert_eq!(idx.lookup(idx.encode(&dna("CG"))), Some(&[1u32][..]));
        assert_eq!(idx.lookup(idx.encode(&dna("GT"))), Some(&[2u32][..]));
        assert!(idx.lookup(idx.encode(&dna("AA"))).is_none());
    }

    #[test]
    fn neighborhood_grows_as_threshold_drops() {
        let q = protein("WCW");
        let m = SubstitutionMatrix::blosum62();
        let strict = WordIndex::build(&q, &m, 3, 25);
        let loose = WordIndex::build(&q, &m, 3, 15);
        assert!(loose.num_words() > strict.num_words());
        // The exact word is present in both (self-score 11+9+11 = 31).
        let code = strict.encode(&protein("WCW"));
        assert!(strict.lookup(code).is_some());
        assert!(loose.lookup(code).is_some());
    }

    #[test]
    fn neighborhood_matches_brute_force() {
        let q = protein("AWK");
        let m = SubstitutionMatrix::blosum62();
        let t = 14;
        let idx = WordIndex::build(&q, &m, 3, t);
        // Brute force over all 20^3 words.
        let mut count = 0usize;
        for a in 0..20u8 {
            for b in 0..20u8 {
                for c in 0..20u8 {
                    let score = m.score(q[0], a) + m.score(q[1], b) + m.score(q[2], c);
                    let code = idx.encode(&[a, b, c]);
                    let hit = idx.lookup(code).is_some();
                    assert_eq!(hit, score >= t, "word {a},{b},{c}");
                    if hit {
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(idx.num_words(), count);
    }

    #[test]
    fn query_shorter_than_word_has_empty_index() {
        let q = dna("AC");
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let idx = WordIndex::build(&q, &m, 3, 3);
        assert_eq!(idx.num_words(), 0);
    }

    #[test]
    fn rolling_scan_matches_direct_encoding() {
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let q = dna("ACGT");
        let idx = WordIndex::build(&q, &m, 2, 2);
        let seq = dna("ACGTTGCA");
        let rolled: Vec<(usize, u32)> = idx.scan(&seq).collect();
        assert_eq!(rolled.len(), seq.len() - 1);
        for &(start, code) in &rolled {
            assert_eq!(code, idx.encode(&seq[start..start + 2]), "at {start}");
        }
    }

    #[test]
    fn multiple_query_positions_share_a_word() {
        let q = dna("ACAC");
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let idx = WordIndex::build(&q, &m, 2, 2);
        assert_eq!(idx.lookup(idx.encode(&dna("AC"))), Some(&[0u32, 2][..]));
    }
}
