//! Substitution matrices.
//!
//! A [`SubstitutionMatrix`] stores the replacement scores `S[a][b]` for all
//! residue pairs of one alphabet. Gap (insertion/deletion) costs live in
//! [`crate::GapModel`]; the paper folds them into a `-` row/column of its
//! Table 1, but separating them keeps affine gaps representable.
//!
//! Provided matrices:
//!
//! * [`SubstitutionMatrix::unit`] — the paper's Table 1 "unit edit distance"
//!   matrix (+1 match / −1 mismatch) for any alphabet.
//! * [`SubstitutionMatrix::blosum62`] — the standard NCBI BLOSUM62 table.
//! * [`SubstitutionMatrix::pam30`] — the high-stringency matrix the paper
//!   uses for its short protein queries ("the PAM30 substitution matrix,
//!   which is the popular choice for short queries", §4.2).

use oasis_bioseq::{Alphabet, AlphabetKind};

use crate::score::Score;

/// A symmetric residue-pair scoring table over one alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    name: String,
    kind: AlphabetKind,
    n: usize,
    /// Row-major `n * n` scores.
    scores: Box<[Score]>,
    /// `max_b S[a][b]` per residue `a`, used by the OASIS heuristic vector.
    row_max: Box<[Score]>,
}

impl SubstitutionMatrix {
    /// Build a matrix from a score function.
    pub fn from_fn(
        name: impl Into<String>,
        kind: AlphabetKind,
        f: impl Fn(u8, u8) -> Score,
    ) -> Self {
        let n = Alphabet::of_kind(kind).len();
        let mut scores = vec![0; n * n].into_boxed_slice();
        for a in 0..n {
            for b in 0..n {
                scores[a * n + b] = f(a as u8, b as u8);
            }
        }
        Self::from_scores(name, kind, scores)
    }

    fn from_scores(name: impl Into<String>, kind: AlphabetKind, scores: Box<[Score]>) -> Self {
        let n = Alphabet::of_kind(kind).len();
        assert_eq!(scores.len(), n * n, "matrix must be {n}x{n}");
        let row_max = (0..n)
            .map(|a| *scores[a * n..(a + 1) * n].iter().max().expect("n > 0"))
            .collect();
        SubstitutionMatrix {
            name: name.into(),
            kind,
            n,
            scores,
            row_max,
        }
    }

    /// Build from a flat row-major table (length `n*n`).
    pub fn from_table(name: impl Into<String>, kind: AlphabetKind, table: &[Score]) -> Self {
        Self::from_scores(name, kind, table.to_vec().into_boxed_slice())
    }

    /// The paper's Table 1 matrix: +1 exact match, −1 otherwise.
    pub fn unit(kind: AlphabetKind) -> Self {
        Self::match_mismatch(kind, 1, -1)
    }

    /// A simple `match`/`mismatch` matrix.
    pub fn match_mismatch(kind: AlphabetKind, matched: Score, mismatched: Score) -> Self {
        assert!(matched > 0, "match score must be positive");
        assert!(mismatched < 0, "mismatch score must be negative");
        Self::from_fn(
            format!("match/mismatch({matched},{mismatched})"),
            kind,
            |a, b| if a == b { matched } else { mismatched },
        )
    }

    /// The standard NCBI BLOSUM62 matrix over the 20 canonical residues in
    /// `ARNDCQEGHILKMFPSTWYV` order.
    pub fn blosum62() -> Self {
        Self::from_scores("BLOSUM62", AlphabetKind::Protein, Box::new(BLOSUM62))
    }

    /// The NCBI PAM30 matrix over the 20 canonical residues in
    /// `ARNDCQEGHILKMFPSTWYV` order.
    ///
    /// PAM30 is what the paper's protein experiments use (§4.2). The table
    /// below follows the NCBI distribution; minor entry deviations would
    /// shift absolute scores only and do not affect any algorithmic claim
    /// reproduced here (symmetry and sign structure are what matter, and are
    /// enforced by tests).
    pub fn pam30() -> Self {
        Self::from_scores("PAM30", AlphabetKind::Protein, Box::new(PAM30))
    }

    /// Matrix name for display.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Alphabet the matrix scores.
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.n
    }

    /// Replacement score for codes `a -> b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> Score {
        debug_assert!((a as usize) < self.n && (b as usize) < self.n);
        self.scores[a as usize * self.n + b as usize]
    }

    /// `max_b S[a][b]`: the best score residue `a` can achieve against any
    /// target residue. This drives the OASIS heuristic vector (§3.1: "the
    /// maximum score for the replacement of `q_{i+1}`").
    #[inline]
    pub fn row_max(&self, a: u8) -> Score {
        self.row_max[a as usize]
    }

    /// The largest entry in the whole matrix.
    pub fn overall_max(&self) -> Score {
        *self.row_max.iter().max().expect("non-empty")
    }

    /// The smallest entry in the whole matrix.
    pub fn overall_min(&self) -> Score {
        *self.scores.iter().min().expect("non-empty")
    }

    /// Whether `S[a][b] == S[b][a]` for all pairs. All standard biological
    /// matrices are symmetric.
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|a| {
            (0..self.n).all(|b| self.scores[a * self.n + b] == self.scores[b * self.n + a])
        })
    }
}

/// NCBI BLOSUM62, rows/cols in `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const BLOSUM62: [Score; 400] = [
//    A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
/*A*/ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0,
/*R*/-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3,
/*N*/-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,
/*D*/-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,
/*C*/ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,
/*Q*/-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,
/*E*/-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,
/*G*/ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3,
/*H*/-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,
/*I*/-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3,
/*L*/-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1,
/*K*/-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,
/*M*/-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1,
/*F*/-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1,
/*P*/-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2,
/*S*/ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,
/*T*/ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0,
/*W*/-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3,
/*Y*/-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1,
/*V*/ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4,
];

/// NCBI PAM30, rows/cols in `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const PAM30: [Score; 400] = [
//     A    R    N    D    C    Q    E    G    H    I    L    K    M    F    P    S    T    W    Y    V
/*A*/  6,  -7,  -4,  -3,  -6,  -4,  -2,  -2,  -7,  -5,  -6,  -7,  -5,  -8,  -2,   0,  -1, -13,  -8,  -2,
/*R*/ -7,   8,  -6, -10,  -8,  -2,  -9,  -9,  -2,  -5,  -8,   0,  -4,  -9,  -4,  -3,  -6,  -2, -10,  -8,
/*N*/ -4,  -6,   8,   2, -11,  -3,  -2,  -3,   0,  -5,  -7,  -1,  -9,  -9,  -6,   0,  -2,  -8,  -4,  -8,
/*D*/ -3, -10,   2,   8, -14,  -2,   2,  -3,  -4,  -7, -12,  -4, -11, -15,  -8,  -4,  -5, -15, -11,  -8,
/*C*/ -6,  -8, -11, -14,  10, -14, -14,  -9,  -7,  -6, -15, -14, -13, -13,  -8,  -3,  -8, -15,  -4,  -6,
/*Q*/ -4,  -2,  -3,  -2, -14,   8,   1,  -7,   1,  -8,  -5,  -3,  -4, -13,  -3,  -5,  -5, -13, -12,  -7,
/*E*/ -2,  -9,  -2,   2, -14,   1,   8,  -4,  -5,  -5,  -9,  -4,  -7, -14,  -5,  -4,  -6, -17,  -8,  -6,
/*G*/ -2,  -9,  -3,  -3,  -9,  -7,  -4,   6,  -9, -11, -10,  -7,  -8,  -9,  -6,  -2,  -6, -15, -14,  -5,
/*H*/ -7,  -2,   0,  -4,  -7,   1,  -5,  -9,   9,  -9,  -6,  -6, -10,  -6,  -4,  -6,  -7,  -7,  -3,  -6,
/*I*/ -5,  -5,  -5,  -7,  -6,  -8,  -5, -11,  -9,   8,  -1,  -6,  -1,  -2,  -8,  -7,  -2, -14,  -6,   2,
/*L*/ -6,  -8,  -7, -12, -15,  -5,  -9, -10,  -6,  -1,   7,  -8,   1,  -3,  -7,  -8,  -7,  -6,  -7,  -2,
/*K*/ -7,   0,  -1,  -4, -14,  -3,  -4,  -7,  -6,  -6,  -8,   7,  -2, -14,  -6,  -4,  -3, -12,  -9,  -9,
/*M*/ -5,  -4,  -9, -11, -13,  -4,  -7,  -8, -10,  -1,   1,  -2,  11,  -4,  -8,  -5,  -4, -13, -11,  -1,
/*F*/ -8,  -9,  -9, -15, -13, -13, -14,  -9,  -6,  -2,  -3, -14,  -4,   9, -10,  -6,  -9,  -4,   2,  -8,
/*P*/ -2,  -4,  -6,  -8,  -8,  -3,  -5,  -6,  -4,  -8,  -7,  -6,  -8, -10,   8,  -2,  -4, -14, -13,  -6,
/*S*/  0,  -3,   0,  -4,  -3,  -5,  -4,  -2,  -6,  -7,  -8,  -4,  -5,  -6,  -2,   6,   0,  -5,  -7,  -6,
/*T*/ -1,  -6,  -2,  -5,  -8,  -5,  -6,  -6,  -7,  -2,  -7,  -3,  -4,  -9,  -4,   0,   7, -13,  -6,  -3,
/*W*/-13,  -2,  -8, -15, -15, -13, -17, -15,  -7, -14,  -6, -12, -13,  -4, -14,  -5, -13,  13,  -5, -15,
/*Y*/ -8, -10,  -4, -11,  -4, -12,  -8, -14,  -3,  -6,  -7,  -9, -11,   2, -13,  -7,  -6,  -5,  10,  -7,
/*V*/ -2,  -8,  -8,  -8,  -6,  -7,  -6,  -5,  -6,   2,  -2,  -9,  -1,  -8,  -6,  -6,  -3, -15,  -7,   7,
];

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_bioseq::Alphabet;

    fn code(alpha: &Alphabet, c: char) -> u8 {
        alpha.encode_char(c).unwrap()
    }

    #[test]
    fn unit_matrix_matches_table1() {
        // Table 1 of the paper: 1 on the diagonal, -1 elsewhere.
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        for a in 0..4u8 {
            for b in 0..4u8 {
                let want = if a == b { 1 } else { -1 };
                assert_eq!(m.score(a, b), want, "S[{a}][{b}]");
            }
        }
        assert_eq!(m.alphabet_len(), 4);
        assert_eq!(m.overall_max(), 1);
        assert_eq!(m.overall_min(), -1);
    }

    #[test]
    fn blosum62_spot_checks() {
        let p = Alphabet::protein();
        let m = SubstitutionMatrix::blosum62();
        // Famous entries.
        assert_eq!(m.score(code(&p, 'W'), code(&p, 'W')), 11);
        assert_eq!(m.score(code(&p, 'A'), code(&p, 'A')), 4);
        assert_eq!(m.score(code(&p, 'W'), code(&p, 'Y')), 2);
        assert_eq!(m.score(code(&p, 'I'), code(&p, 'V')), 3);
        assert_eq!(m.score(code(&p, 'E'), code(&p, 'D')), 2);
        assert_eq!(m.score(code(&p, 'G'), code(&p, 'P')), -2);
        assert_eq!(m.overall_max(), 11);
    }

    #[test]
    fn pam30_spot_checks() {
        let p = Alphabet::protein();
        let m = SubstitutionMatrix::pam30();
        assert_eq!(m.score(code(&p, 'W'), code(&p, 'W')), 13);
        assert_eq!(m.score(code(&p, 'M'), code(&p, 'M')), 11);
        assert_eq!(m.score(code(&p, 'N'), code(&p, 'D')), 2);
        assert_eq!(m.score(code(&p, 'K'), code(&p, 'R')), 0);
        assert!(m.overall_min() <= -15);
    }

    #[test]
    fn standard_matrices_are_symmetric() {
        assert!(SubstitutionMatrix::blosum62().is_symmetric());
        assert!(SubstitutionMatrix::pam30().is_symmetric());
        assert!(SubstitutionMatrix::unit(AlphabetKind::Dna).is_symmetric());
        assert!(SubstitutionMatrix::unit(AlphabetKind::Protein).is_symmetric());
    }

    #[test]
    fn diagonals_are_positive() {
        for m in [SubstitutionMatrix::blosum62(), SubstitutionMatrix::pam30()] {
            for a in 0..20u8 {
                assert!(m.score(a, a) > 0, "{} diagonal at {a}", m.name());
            }
        }
    }

    #[test]
    fn row_max_is_consistent() {
        for m in [
            SubstitutionMatrix::blosum62(),
            SubstitutionMatrix::pam30(),
            SubstitutionMatrix::unit(AlphabetKind::Dna),
        ] {
            for a in 0..m.alphabet_len() as u8 {
                let want = (0..m.alphabet_len() as u8)
                    .map(|b| m.score(a, b))
                    .max()
                    .unwrap();
                assert_eq!(m.row_max(a), want);
            }
        }
    }

    #[test]
    fn row_max_on_diagonal_for_standard_matrices() {
        // For BLOSUM62 and PAM30 the best partner of every residue is itself.
        for m in [SubstitutionMatrix::blosum62(), SubstitutionMatrix::pam30()] {
            for a in 0..20u8 {
                assert_eq!(m.row_max(a), m.score(a, a), "{} row {a}", m.name());
            }
        }
    }

    #[test]
    fn from_fn_and_from_table_agree() {
        let f =
            SubstitutionMatrix::from_fn("t", AlphabetKind::Dna, |a, b| (a as Score) - (b as Score));
        let mut table = [0; 16];
        for a in 0..4usize {
            for b in 0..4usize {
                table[a * 4 + b] = a as Score - b as Score;
            }
        }
        let t = SubstitutionMatrix::from_table("t", AlphabetKind::Dna, &table);
        assert_eq!(f, t);
        assert!(!t.is_symmetric()); // deliberately asymmetric
    }

    #[test]
    #[should_panic(expected = "match score must be positive")]
    fn match_mismatch_validates_signs() {
        SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 0, -1);
    }
}
