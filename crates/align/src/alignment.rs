//! Alignment representation: the operation list recovered by traceback,
//! plus pretty-printing in the style of the paper's Figure 1.

use oasis_bioseq::Alphabet;

use crate::score::Score;

/// One local-alignment operation (§2.1): every operation is a generalized
/// replacement `x -> y`, where insertions are `x -> -` and deletions are
/// `- -> y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Replace a query residue with a target residue (match or mismatch).
    Replace,
    /// Skip a symbol in the query (`q -> -`): the paper's *insertion*.
    Insert,
    /// Skip a symbol in the target (`- -> t`): the paper's *deletion*.
    Delete,
}

/// A fully resolved local alignment between a query and a target window.
///
/// Ranges are half-open over the respective coordinate spaces. `ops` walk
/// from `(q_start, t_start)` to `(q_end, t_end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total alignment score.
    pub score: Score,
    /// First aligned query position.
    pub q_start: usize,
    /// One past the last aligned query position.
    pub q_end: usize,
    /// First aligned target position.
    pub t_start: usize,
    /// One past the last aligned target position.
    pub t_end: usize,
    /// The operations, in left-to-right order.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Number of operations (columns in the printed alignment).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the alignment has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of `(replace, insert, delete)` operations.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut r = 0;
        let mut i = 0;
        let mut d = 0;
        for op in &self.ops {
            match op {
                AlignOp::Replace => r += 1,
                AlignOp::Insert => i += 1,
                AlignOp::Delete => d += 1,
            }
        }
        (r, i, d)
    }

    /// Check internal consistency: the ops must consume exactly the residues
    /// in the two ranges.
    pub fn is_consistent(&self) -> bool {
        let (r, i, d) = self.op_counts();
        r + i == self.q_end - self.q_start && r + d == self.t_end - self.t_start
    }

    /// Fraction of `Replace` columns where query and target residues are
    /// identical.
    pub fn identity(&self, query: &[u8], target: &[u8]) -> f64 {
        let mut qi = self.q_start;
        let mut ti = self.t_start;
        let mut replaces = 0usize;
        let mut identical = 0usize;
        for op in &self.ops {
            match op {
                AlignOp::Replace => {
                    replaces += 1;
                    if query[qi] == target[ti] {
                        identical += 1;
                    }
                    qi += 1;
                    ti += 1;
                }
                AlignOp::Insert => qi += 1,
                AlignOp::Delete => ti += 1,
            }
        }
        if replaces == 0 {
            0.0
        } else {
            identical as f64 / replaces as f64
        }
    }

    /// A compact CIGAR-style string: `R` replace, `I` insert (query gap in
    /// target), `D` delete, run-length encoded (`4R1D3R`).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(op) = iter.next() {
            let mut run = 1usize;
            while iter.peek() == Some(&op) {
                iter.next();
                run += 1;
            }
            let ch = match op {
                AlignOp::Replace => 'R',
                AlignOp::Insert => 'I',
                AlignOp::Delete => 'D',
            };
            out.push_str(&run.to_string());
            out.push(ch);
        }
        out
    }

    /// Render a three-line alignment like the paper's Figure 1:
    ///
    /// ```text
    /// Q: TAC-G
    ///    ||| |
    /// T: TACCG
    /// ```
    ///
    /// `|` marks identities, `.` marks substitutions, spaces mark gaps.
    pub fn render(&self, query: &[u8], target: &[u8], alphabet: &Alphabet) -> String {
        let mut top = String::from("Q: ");
        let mut mid = String::from("   ");
        let mut bot = String::from("T: ");
        let mut qi = self.q_start;
        let mut ti = self.t_start;
        for op in &self.ops {
            match op {
                AlignOp::Replace => {
                    top.push(alphabet.decode(query[qi]));
                    bot.push(alphabet.decode(target[ti]));
                    mid.push(if query[qi] == target[ti] { '|' } else { '.' });
                    qi += 1;
                    ti += 1;
                }
                AlignOp::Insert => {
                    top.push(alphabet.decode(query[qi]));
                    bot.push('-');
                    mid.push(' ');
                    qi += 1;
                }
                AlignOp::Delete => {
                    top.push('-');
                    bot.push(alphabet.decode(target[ti]));
                    mid.push(' ');
                    ti += 1;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_bioseq::Alphabet;

    fn sample() -> Alignment {
        // Q: TAC-G  vs  T: TACCG
        Alignment {
            score: 3,
            q_start: 0,
            q_end: 4,
            t_start: 0,
            t_end: 5,
            ops: vec![
                AlignOp::Replace,
                AlignOp::Replace,
                AlignOp::Replace,
                AlignOp::Delete,
                AlignOp::Replace,
            ],
        }
    }

    #[test]
    fn op_counts_and_consistency() {
        let a = sample();
        assert_eq!(a.op_counts(), (4, 0, 1));
        assert!(a.is_consistent());
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn inconsistent_detected() {
        let mut a = sample();
        a.q_end = 5; // ops no longer consume the range
        assert!(!a.is_consistent());
    }

    #[test]
    fn cigar_run_length() {
        let a = sample();
        assert_eq!(a.cigar(), "3R1D1R");
    }

    #[test]
    fn identity_fraction() {
        let alpha = Alphabet::dna();
        let q = alpha.encode_str("TACG").unwrap();
        let t = alpha.encode_str("TACCG").unwrap();
        let a = sample();
        assert!((a.identity(&q, &t) - 1.0).abs() < 1e-12);

        let t2 = alpha.encode_str("TGCCG").unwrap();
        assert!((a.identity(&q, &t2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_figure1_style() {
        let alpha = Alphabet::dna();
        let q = alpha.encode_str("TACG").unwrap();
        let t = alpha.encode_str("TACCG").unwrap();
        let text = sample().render(&q, &t, &alpha);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Q: TAC-G");
        assert_eq!(lines[1], "   ||| |");
        assert_eq!(lines[2], "T: TACCG");
    }

    #[test]
    fn render_marks_mismatches() {
        let alpha = Alphabet::dna();
        let q = alpha.encode_str("TA").unwrap();
        let t = alpha.encode_str("TG").unwrap();
        let a = Alignment {
            score: 0,
            q_start: 0,
            q_end: 2,
            t_start: 0,
            t_end: 2,
            ops: vec![AlignOp::Replace, AlignOp::Replace],
        };
        let text = a.render(&q, &t, &alpha);
        assert!(text.lines().nth(1).unwrap().contains('.'));
    }
}
