#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # oasis-align
//!
//! The alignment substrate for the OASIS reproduction:
//!
//! * [`matrix`] — substitution matrices: the paper's Table 1 unit
//!   edit-distance matrix, BLOSUM62 and PAM30 (the matrix the paper uses for
//!   its protein experiments), and arbitrary user matrices.
//! * [`gaps`] — the fixed (linear) gap-penalty model used throughout the
//!   paper's evaluation, plus the affine model listed as future work.
//! * [`sw`] — the Smith-Waterman baseline (§2.2): score-only linear-memory
//!   scans with column counters, full-matrix variants with traceback, and a
//!   database scanner that reports the single strongest alignment per
//!   sequence (the reporting mode OASIS duplicates).
//! * [`alignment`] — alignment representation (operations, ranges, pretty
//!   printing like the paper's Figure 1).
//! * [`stats`] — Karlin-Altschul statistics: λ, K, H estimation and the
//!   E-value ⇔ score conversions of the paper's Equations 2 and 3.

pub mod alignment;
pub mod gaps;
pub mod matrix;
pub mod score;
pub mod stats;
pub mod sw;

pub use alignment::{AlignOp, Alignment};
pub use gaps::{GapModel, Scoring};
pub use matrix::SubstitutionMatrix;
pub use score::{Score, NEG_INF};
pub use stats::{background_dna, background_protein, KarlinParams, StatsError};
pub use sw::{sw_align, sw_best, sw_full_matrix, LocalHit, SeqBest, SwScanner};
