//! Gap-penalty models and the combined scoring configuration.

use crate::matrix::SubstitutionMatrix;
use crate::score::Score;

/// How insertions and deletions are charged.
///
/// The paper's evaluation uses the fixed model throughout ("All search tools
/// were configured to use a fixed gap penalty model. With this model, a
/// series of k insertions or deletions contributes k·g to the alignment
/// score", §4.2). The affine model is the paper's stated future work and is
/// implemented here as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Every gapped symbol costs `per_symbol` (negative). A `k`-length gap
    /// contributes `k * per_symbol`.
    Linear {
        /// Per-symbol gap score; must be negative.
        per_symbol: Score,
    },
    /// Opening a gap costs `open`, every gapped symbol (including the first)
    /// costs `extend`; a `k`-length gap contributes `open + k * extend`.
    Affine {
        /// One-time gap-open score; must be non-positive.
        open: Score,
        /// Per-symbol gap-extension score; must be negative.
        extend: Score,
    },
}

impl GapModel {
    /// Fixed gap model with the given (negative) per-symbol score.
    pub fn linear(per_symbol: Score) -> Self {
        assert!(per_symbol < 0, "gap penalty must be negative");
        GapModel::Linear { per_symbol }
    }

    /// Affine gap model `open + k * extend`.
    pub fn affine(open: Score, extend: Score) -> Self {
        assert!(open <= 0, "gap-open penalty must be non-positive");
        assert!(extend < 0, "gap-extend penalty must be negative");
        GapModel::Affine { open, extend }
    }

    /// Is this the fixed (linear) model?
    pub fn is_linear(&self) -> bool {
        matches!(self, GapModel::Linear { .. })
    }

    /// Total score of a `k`-symbol gap.
    pub fn gap_score(&self, k: u32) -> Score {
        match *self {
            GapModel::Linear { per_symbol } => per_symbol * k as Score,
            GapModel::Affine { open, extend } => {
                if k == 0 {
                    0
                } else {
                    open + extend * k as Score
                }
            }
        }
    }

    /// The per-symbol score for the linear model.
    ///
    /// # Panics
    /// Panics on the affine model; the linear-gap DP kernels call this after
    /// dispatching on the model.
    pub fn linear_per_symbol(&self) -> Score {
        match *self {
            GapModel::Linear { per_symbol } => per_symbol,
            GapModel::Affine { .. } => panic!("affine gap model has no single per-symbol score"),
        }
    }
}

/// A complete scoring configuration: substitution matrix plus gap model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoring {
    /// Residue replacement scores.
    pub matrix: SubstitutionMatrix,
    /// Insertion/deletion scoring.
    pub gap: GapModel,
}

impl Scoring {
    /// Bundle a matrix with a gap model.
    pub fn new(matrix: SubstitutionMatrix, gap: GapModel) -> Self {
        Scoring { matrix, gap }
    }

    /// The paper's running-example configuration: Table 1 unit matrix with
    /// −1 gaps (the `-` row/column of Table 1).
    pub fn unit_dna() -> Self {
        Scoring::new(
            SubstitutionMatrix::unit(oasis_bioseq::AlphabetKind::Dna),
            GapModel::linear(-1),
        )
    }

    /// The paper's protein configuration: PAM30 with a fixed gap penalty.
    /// The paper does not state its gap value; −10 is a conventional choice
    /// for PAM30-scale scores.
    pub fn pam30_protein() -> Self {
        Scoring::new(SubstitutionMatrix::pam30(), GapModel::linear(-10))
    }

    /// BLOSUM62 with a conventional −8 fixed gap penalty.
    pub fn blosum62_protein() -> Self {
        Scoring::new(SubstitutionMatrix::blosum62(), GapModel::linear(-8))
    }

    /// Replacement score lookup.
    #[inline]
    pub fn sub(&self, a: u8, b: u8) -> Score {
        self.matrix.score(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_gap_math() {
        let g = GapModel::linear(-2);
        assert_eq!(g.gap_score(0), 0);
        assert_eq!(g.gap_score(1), -2);
        assert_eq!(g.gap_score(5), -10);
        assert_eq!(g.linear_per_symbol(), -2);
        assert!(g.is_linear());
    }

    #[test]
    fn affine_gap_math() {
        let g = GapModel::affine(-10, -1);
        assert_eq!(g.gap_score(0), 0);
        assert_eq!(g.gap_score(1), -11);
        assert_eq!(g.gap_score(4), -14);
        assert!(!g.is_linear());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn linear_rejects_positive() {
        GapModel::linear(1);
    }

    #[test]
    #[should_panic(expected = "no single per-symbol score")]
    fn affine_has_no_linear_score() {
        GapModel::affine(-5, -1).linear_per_symbol();
    }

    #[test]
    fn preset_scorings() {
        let u = Scoring::unit_dna();
        assert_eq!(u.sub(0, 0), 1);
        assert_eq!(u.sub(0, 1), -1);
        assert_eq!(u.gap.gap_score(1), -1);

        let p = Scoring::pam30_protein();
        assert_eq!(p.matrix.name(), "PAM30");

        let b = Scoring::blosum62_protein();
        assert_eq!(b.matrix.name(), "BLOSUM62");
    }
}
