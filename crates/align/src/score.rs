//! Alignment score arithmetic.

/// Alignment scores are plain 32-bit integers, as in the paper's substitution
/// matrices and DP recurrences.
pub type Score = i32;

/// The "pruned" sentinel (the paper's −∞).
///
/// Pruned entries of a search node's `C` vector take this value (§3: "`c_i`
/// is set to −∞ if the alignment has been pruned"). The sentinel sits far
/// enough below zero that adding any realistic score to it cannot overflow
/// or climb back above real scores, which lets the DP recurrences add to it
/// without branching.
pub const NEG_INF: Score = i32::MIN / 4;

/// Saturating-at-sentinel addition: once a value is pruned it stays pruned.
///
/// Both operands may be `NEG_INF`; the result never exceeds `NEG_INF + rhs`
/// when pruned, which remains far below any reachable score.
#[inline]
pub fn add(a: Score, b: Score) -> Score {
    // Plain addition is safe because NEG_INF + NEG_INF = i32::MIN / 2 which
    // still cannot overflow when combined with matrix entries (|s| < 2^16).
    a + b
}

/// Is the value the pruned sentinel (or the result of arithmetic on it)?
#[inline]
pub fn is_pruned(a: Score) -> bool {
    a <= NEG_INF / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inf_absorbs_additions() {
        let x = add(NEG_INF, 1000);
        assert!(is_pruned(x));
        let y = add(x, 1000);
        assert!(is_pruned(y));
    }

    #[test]
    fn double_neg_inf_does_not_overflow() {
        let x = add(NEG_INF, NEG_INF);
        assert!(x < NEG_INF);
        assert!(is_pruned(x));
        // Adding a matrix-scale score still cannot wrap.
        let y = add(x, -(1 << 16));
        assert!(y < 0);
    }

    #[test]
    fn real_scores_not_pruned() {
        assert!(!is_pruned(0));
        assert!(!is_pruned(-1_000_000));
        assert!(!is_pruned(1_000_000));
    }
}
