//! The Smith-Waterman baseline (§2.2 of the paper).
//!
//! Three entry points with different cost/feature trade-offs:
//!
//! * [`sw_best`] — score-only, O(query) memory, works with both gap models.
//!   This is the kernel the paper's S-W timings correspond to.
//! * [`sw_full_matrix`] / [`sw_align`] — full DP matrix with traceback, used
//!   on bounded windows to recover operation-level alignments and in tests
//!   (it reproduces the paper's Table 2 exactly).
//! * [`SwScanner`] — scans a whole [`SequenceDatabase`], reporting "the
//!   single strongest alignment for each sequence in the database", which is
//!   the reporting behaviour OASIS duplicates (§3). It also counts
//!   column-wise expansions, the filtering metric of the paper's Figure 4.

use oasis_bioseq::{SeqId, SequenceDatabase};

use crate::alignment::{AlignOp, Alignment};
use crate::gaps::{GapModel, Scoring};
use crate::score::{Score, NEG_INF};

/// Best local alignment endpoint: score plus half-open end coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalHit {
    /// The maximum local-alignment score (0 if nothing positive exists).
    pub score: Score,
    /// One past the last aligned query position of the best cell.
    pub q_end: usize,
    /// One past the last aligned target position of the best cell.
    pub t_end: usize,
}

/// Compute the maximum local-alignment score between `query` and `target`.
///
/// Linear memory in the query; both gap models supported. Returns the
/// all-zero hit for empty inputs or when no positive-scoring alignment
/// exists.
pub fn sw_best(query: &[u8], target: &[u8], scoring: &Scoring) -> LocalHit {
    match scoring.gap {
        GapModel::Linear { per_symbol } => sw_best_linear(query, target, scoring, per_symbol),
        GapModel::Affine { open, extend } => sw_best_affine(query, target, scoring, open, extend),
    }
}

fn sw_best_linear(query: &[u8], target: &[u8], scoring: &Scoring, gap: Score) -> LocalHit {
    let n = query.len();
    let mut col = vec![0 as Score; n + 1];
    let mut best = LocalHit {
        score: 0,
        q_end: 0,
        t_end: 0,
    };
    for (j, &t) in target.iter().enumerate() {
        let mut diag = col[0]; // M[i-1][j-1]
        for i in 1..=n {
            // `col[i]` still holds the previous column's row i (M[i][j-1]);
            // `col[i-1]` was already overwritten with the current column's
            // row i-1 (M[i-1][j]).
            let left = col[i];
            let replace = diag + scoring.sub(query[i - 1], t);
            let insert = col[i - 1] + gap; // gap in target: skip query symbol
            let delete = left + gap; // gap in query: skip target symbol
            let v = 0.max(replace).max(insert).max(delete);
            diag = left;
            col[i] = v;
            if v > best.score {
                best = LocalHit {
                    score: v,
                    q_end: i,
                    t_end: j + 1,
                };
            }
        }
    }
    best
}

fn sw_best_affine(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    open: Score,
    extend: Score,
) -> LocalHit {
    let n = query.len();
    // h[i]: best alignment ending at (i, j); e[i]: best ending with a gap in
    // the query (target symbol consumed by a gap); f: gap in the target.
    let mut h = vec![0 as Score; n + 1];
    let mut e = vec![NEG_INF; n + 1];
    let mut best = LocalHit {
        score: 0,
        q_end: 0,
        t_end: 0,
    };
    for (j, &t) in target.iter().enumerate() {
        let mut diag = h[0];
        let mut f = NEG_INF;
        for i in 1..=n {
            e[i] = (h[i] + open + extend).max(e[i] + extend);
            f = (h[i - 1] + open + extend).max(f + extend);
            let replace = diag + scoring.sub(query[i - 1], t);
            let v = 0.max(replace).max(e[i]).max(f);
            diag = h[i];
            h[i] = v;
            if v > best.score {
                best = LocalHit {
                    score: v,
                    q_end: i,
                    t_end: j + 1,
                };
            }
        }
    }
    best
}

/// Build the full `(n+1) x (m+1)` S-W matrix with linear gaps (Equation 1 of
/// the paper). Row 0 and column 0 are zero. Intended for tests and for
/// traceback over bounded windows; quadratic memory.
pub fn sw_full_matrix(query: &[u8], target: &[u8], scoring: &Scoring) -> Vec<Vec<Score>> {
    let gap = scoring.gap.linear_per_symbol();
    let n = query.len();
    let m = target.len();
    let mut mat = vec![vec![0 as Score; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let replace = mat[i - 1][j - 1] + scoring.sub(query[i - 1], target[j - 1]);
            let insert = mat[i - 1][j] + gap;
            let delete = mat[i][j - 1] + gap;
            mat[i][j] = 0.max(replace).max(insert).max(delete);
        }
    }
    mat
}

/// Full Smith-Waterman with traceback: returns the single best local
/// alignment, or `None` when no positive-scoring alignment exists.
///
/// Supports both gap models (the affine variant builds the three Gotoh
/// matrices). Quadratic memory — use on bounded windows.
pub fn sw_align(query: &[u8], target: &[u8], scoring: &Scoring) -> Option<Alignment> {
    match scoring.gap {
        GapModel::Linear { per_symbol } => sw_align_linear(query, target, scoring, per_symbol),
        GapModel::Affine { open, extend } => sw_align_affine(query, target, scoring, open, extend),
    }
}

fn sw_align_linear(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gap: Score,
) -> Option<Alignment> {
    let mat = sw_full_matrix(query, target, scoring);
    let n = query.len();
    let m = target.len();
    let mut bi = 0;
    let mut bj = 0;
    for i in 0..=n {
        for j in 0..=m {
            if mat[i][j] > mat[bi][bj] {
                bi = i;
                bj = j;
            }
        }
    }
    if mat[bi][bj] <= 0 {
        return None;
    }
    let score = mat[bi][bj];
    let (mut i, mut j) = (bi, bj);
    let mut ops = Vec::new();
    while mat[i][j] > 0 {
        let v = mat[i][j];
        if i > 0 && j > 0 && v == mat[i - 1][j - 1] + scoring.sub(query[i - 1], target[j - 1]) {
            ops.push(AlignOp::Replace);
            i -= 1;
            j -= 1;
        } else if i > 0 && v == mat[i - 1][j] + gap {
            ops.push(AlignOp::Insert);
            i -= 1;
        } else if j > 0 && v == mat[i][j - 1] + gap {
            ops.push(AlignOp::Delete);
            j -= 1;
        } else {
            break; // reached a fresh start (value produced by the 0 reset)
        }
    }
    ops.reverse();
    Some(Alignment {
        score,
        q_start: i,
        q_end: bi,
        t_start: j,
        t_end: bj,
        ops,
    })
}

fn sw_align_affine(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    open: Score,
    extend: Score,
) -> Option<Alignment> {
    let n = query.len();
    let m = target.len();
    let mut h = vec![vec![0 as Score; m + 1]; n + 1];
    let mut e = vec![vec![NEG_INF; m + 1]; n + 1];
    let mut f = vec![vec![NEG_INF; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            e[i][j] = (h[i][j - 1] + open + extend).max(e[i][j - 1] + extend);
            f[i][j] = (h[i - 1][j] + open + extend).max(f[i - 1][j] + extend);
            let replace = h[i - 1][j - 1] + scoring.sub(query[i - 1], target[j - 1]);
            h[i][j] = 0.max(replace).max(e[i][j]).max(f[i][j]);
        }
    }
    let mut bi = 0;
    let mut bj = 0;
    for i in 0..=n {
        for j in 0..=m {
            if h[i][j] > h[bi][bj] {
                bi = i;
                bj = j;
            }
        }
    }
    if h[bi][bj] <= 0 {
        return None;
    }
    let score = h[bi][bj];
    // Traceback with an explicit state machine over (H, E, F).
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        H,
        E,
        F,
    }
    let (mut i, mut j) = (bi, bj);
    let mut st = St::H;
    let mut ops = Vec::new();
    loop {
        match st {
            St::H => {
                let v = h[i][j];
                if v == 0 {
                    break;
                }
                if i > 0 && j > 0 && v == h[i - 1][j - 1] + scoring.sub(query[i - 1], target[j - 1])
                {
                    ops.push(AlignOp::Replace);
                    i -= 1;
                    j -= 1;
                } else if v == e[i][j] {
                    st = St::E;
                } else if v == f[i][j] {
                    st = St::F;
                } else {
                    break;
                }
            }
            St::E => {
                ops.push(AlignOp::Delete);
                let from_open = h[i][j - 1] + open + extend;
                if e[i][j] == from_open {
                    st = St::H;
                }
                j -= 1;
            }
            St::F => {
                ops.push(AlignOp::Insert);
                let from_open = h[i - 1][j] + open + extend;
                if f[i][j] == from_open {
                    st = St::H;
                }
                i -= 1;
            }
        }
    }
    ops.reverse();
    Some(Alignment {
        score,
        q_start: i,
        q_end: bi,
        t_start: j,
        t_end: bj,
        ops,
    })
}

/// Best alignment of one database sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqBest {
    /// Which sequence.
    pub seq: SeqId,
    /// Best score and end coordinates; `t_end` is relative to the sequence.
    pub hit: LocalHit,
}

/// Database scanner: Smith-Waterman over every sequence, keeping the single
/// strongest alignment per sequence, with instrumentation.
#[derive(Debug, Default)]
pub struct SwScanner {
    columns: u64,
    cells: u64,
}

impl SwScanner {
    /// New scanner with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Column-wise expansions performed so far: one per target symbol
    /// processed, the metric of the paper's Figure 4.
    pub fn columns_expanded(&self) -> u64 {
        self.columns
    }

    /// Total DP cells computed (columns × query length).
    pub fn cells_computed(&self) -> u64 {
        self.cells
    }

    /// Scan the database, returning each sequence whose best local alignment
    /// scores at least `min_score`, sorted by descending score (sequence id
    /// breaks ties) to match OASIS's online output order.
    pub fn scan(
        &mut self,
        db: &SequenceDatabase,
        query: &[u8],
        scoring: &Scoring,
        min_score: Score,
    ) -> Vec<SeqBest> {
        assert!(min_score > 0, "min_score must be positive");
        let mut out = Vec::new();
        for seq in db.sequences() {
            self.columns += seq.codes.len() as u64;
            self.cells += seq.codes.len() as u64 * query.len() as u64;
            let hit = sw_best(query, seq.codes, scoring);
            if hit.score >= min_score {
                out.push(SeqBest { seq: seq.id, hit });
            }
        }
        out.sort_by(|a, b| b.hit.score.cmp(&a.hit.score).then(a.seq.cmp(&b.seq)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SubstitutionMatrix;
    use oasis_bioseq::{Alphabet, AlphabetKind, DatabaseBuilder};

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::dna().encode_str(s).unwrap()
    }

    /// The paper's Table 2: query TACG against target AGTACGCCTAG under the
    /// unit matrix with −1 gaps. Values verified by hand against Equation 1
    /// (two OCR-damaged cells in the paper's table are corrected: row C
    /// column 11 is 1 and row G column 2 is 1).
    #[test]
    fn table2_matrix_reproduced() {
        let scoring = Scoring::unit_dna();
        let q = dna("TACG");
        let t = dna("AGTACGCCTAG");
        let mat = sw_full_matrix(&q, &t, &scoring);
        let expect: [[Score; 11]; 4] = [
            [0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0],
            [1, 0, 0, 2, 1, 0, 0, 0, 0, 2, 1],
            [0, 0, 0, 1, 3, 2, 1, 1, 0, 1, 1],
            [0, 1, 0, 0, 2, 4, 3, 2, 1, 0, 2],
        ];
        for i in 0..4 {
            for j in 0..11 {
                assert_eq!(
                    mat[i + 1][j + 1],
                    expect[i][j],
                    "cell ({},{})",
                    i + 1,
                    j + 1
                );
            }
        }
    }

    #[test]
    fn table2_best_alignment() {
        let scoring = Scoring::unit_dna();
        let q = dna("TACG");
        let t = dna("AGTACGCCTAG");
        let hit = sw_best(&q, &t, &scoring);
        assert_eq!(hit.score, 4);
        assert_eq!(hit.q_end, 4);
        assert_eq!(hit.t_end, 6); // TACG ends at target position 6

        let aln = sw_align(&q, &t, &scoring).unwrap();
        assert_eq!(aln.score, 4);
        assert_eq!((aln.q_start, aln.q_end), (0, 4));
        assert_eq!((aln.t_start, aln.t_end), (2, 6));
        assert_eq!(aln.cigar(), "4R");
        assert!(aln.is_consistent());
    }

    #[test]
    fn sw_best_matches_full_matrix_max() {
        let scoring = Scoring::unit_dna();
        let q = dna("GATTACA");
        let t = dna("TTGACCAGATACATTG");
        let mat = sw_full_matrix(&q, &t, &scoring);
        let max = mat.iter().flatten().copied().max().unwrap();
        assert_eq!(sw_best(&q, &t, &scoring).score, max);
    }

    #[test]
    fn no_positive_alignment_returns_zero_and_none() {
        let scoring = Scoring::unit_dna();
        let q = dna("AAAA");
        let t = dna("TTTT");
        assert_eq!(sw_best(&q, &t, &scoring).score, 0);
        assert!(sw_align(&q, &t, &scoring).is_none());
    }

    #[test]
    fn empty_inputs() {
        let scoring = Scoring::unit_dna();
        assert_eq!(sw_best(&[], &dna("ACGT"), &scoring).score, 0);
        assert_eq!(sw_best(&dna("ACGT"), &[], &scoring).score, 0);
        assert_eq!(sw_best(&[], &[], &scoring).score, 0);
    }

    #[test]
    fn gap_forced_alignment() {
        // Query TTAA vs target TTCAA: best alignment deletes the C.
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 2, -3),
            GapModel::linear(-1),
        );
        let q = dna("TTAA");
        let t = dna("TTCAA");
        let hit = sw_best(&q, &t, &scoring);
        assert_eq!(hit.score, 2 * 4 - 1);
        let aln = sw_align(&q, &t, &scoring).unwrap();
        assert_eq!(aln.cigar(), "2R1D2R");
        assert!(aln.is_consistent());
    }

    #[test]
    fn affine_matches_linear_when_open_is_zero() {
        // With open = 0, affine(0, e) must equal linear(e) scores.
        let q = dna("GATTACA");
        let targets = ["TTGACCAGATACATTG", "GATCTACA", "CCCCCC", "GAATTACA"];
        for t in targets {
            let t = dna(t);
            let lin = Scoring::new(
                SubstitutionMatrix::unit(AlphabetKind::Dna),
                GapModel::linear(-1),
            );
            let aff = Scoring::new(
                SubstitutionMatrix::unit(AlphabetKind::Dna),
                GapModel::affine(0, -1),
            );
            assert_eq!(
                sw_best(&q, &t, &lin).score,
                sw_best(&q, &t, &aff).score,
                "target {t:?}"
            );
        }
    }

    #[test]
    fn affine_penalizes_gap_opens() {
        // One 2-gap should beat two 1-gaps under affine scoring.
        // Query AATT vs target AAGGTT (one 2-gap) and AGAGTT-like shapes.
        let aff = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 5, -4),
            GapModel::affine(-3, -1),
        );
        let q = dna("AATT");
        let one_gap = dna("AAGGTT");
        let hit = sw_best(&q, &one_gap, &aff);
        // 4 matches (20) + open (-3) + 2 extends (-2) = 15.
        assert_eq!(hit.score, 15);
        let aln = sw_align(&q, &one_gap, &aff).unwrap();
        assert_eq!(aln.score, 15);
        assert_eq!(aln.cigar(), "2R2D2R");
        assert!(aln.is_consistent());
    }

    #[test]
    fn affine_align_matches_affine_best() {
        let aff = Scoring::new(SubstitutionMatrix::blosum62(), GapModel::affine(-11, -1));
        let p = Alphabet::protein();
        let q = p.encode_str("MKTAYIAK").unwrap();
        let t = p.encode_str("GGMKTAWYIAKGG").unwrap();
        let best = sw_best(&q, &t, &aff);
        let aln = sw_align(&q, &t, &aff).unwrap();
        assert_eq!(best.score, aln.score);
        assert!(aln.is_consistent());
    }

    #[test]
    fn scanner_reports_per_sequence_best_sorted() {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("s0", "AGTACGCCTAG").unwrap(); // contains TACG: score 4
        b.push_str("s1", "TTTTTTTT").unwrap(); // best score 1 (lone T match)
        b.push_str("s2", "GGTACGG").unwrap(); // contains TACG: score 4
        b.push_str("s3", "TACCG").unwrap(); // TAC.G: score 3 (gap)
        let db = b.finish();
        let scoring = Scoring::unit_dna();
        let q = dna("TACG");
        let mut scanner = SwScanner::new();
        let hits = scanner.scan(&db, &q, &scoring, 2);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].seq, 0);
        assert_eq!(hits[0].hit.score, 4);
        assert_eq!(hits[1].seq, 2);
        assert_eq!(hits[1].hit.score, 4);
        assert_eq!(hits[2].seq, 3);
        assert_eq!(hits[2].hit.score, 3);
        // Columns = total residues.
        assert_eq!(scanner.columns_expanded(), db.total_residues());
        assert_eq!(scanner.cells_computed(), db.total_residues() * 4);
    }

    #[test]
    fn scanner_min_score_filters() {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("s0", "AGTACGCCTAG").unwrap();
        b.push_str("s3", "TACCG").unwrap();
        let db = b.finish();
        let scoring = Scoring::unit_dna();
        let q = dna("TACG");
        let hits = SwScanner::new().scan(&db, &q, &scoring, 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 0);
    }

    #[test]
    #[should_panic(expected = "min_score must be positive")]
    fn scanner_rejects_nonpositive_threshold() {
        let db = DatabaseBuilder::new(Alphabet::dna()).finish();
        SwScanner::new().scan(&db, &[], &Scoring::unit_dna(), 0);
    }

    /// Recompute an alignment's score from its operations — an independent
    /// check that traceback and the DP agree.
    fn score_of(aln: &Alignment, q: &[u8], t: &[u8], scoring: &Scoring) -> Score {
        let mut qi = aln.q_start;
        let mut ti = aln.t_start;
        let mut total = 0;
        // A gap run is a maximal stretch of the *same* gap direction; an
        // Insert adjacent to a Delete opens a second gap.
        let mut run_op: Option<AlignOp> = None;
        let mut run_len = 0u32;
        let close = |run_op: &mut Option<AlignOp>, run_len: &mut u32, total: &mut Score| {
            if run_op.is_some() {
                *total += scoring.gap.gap_score(*run_len);
                *run_op = None;
                *run_len = 0;
            }
        };
        for &op in &aln.ops {
            match op {
                AlignOp::Replace => {
                    close(&mut run_op, &mut run_len, &mut total);
                    total += scoring.sub(q[qi], t[ti]);
                    qi += 1;
                    ti += 1;
                }
                AlignOp::Insert | AlignOp::Delete => {
                    if run_op != Some(op) {
                        close(&mut run_op, &mut run_len, &mut total);
                        run_op = Some(op);
                    }
                    run_len += 1;
                    if op == AlignOp::Insert {
                        qi += 1;
                    } else {
                        ti += 1;
                    }
                }
            }
        }
        close(&mut run_op, &mut run_len, &mut total);
        total
    }

    #[test]
    fn protein_blosum62_alignment() {
        // Classic textbook pair (Durbin et al. §2.3), BLOSUM62 + linear -8:
        // the optimum is AWGHE aligned to AW-HE.
        let p = Alphabet::protein();
        let scoring = Scoring::blosum62_protein();
        let q = p.encode_str("HEAGAWGHEE").unwrap();
        let t = p.encode_str("PAWHEAE").unwrap();
        let hit = sw_best(&q, &t, &scoring);
        // A-A(4) + W-W(11) + G-gap(-8) + H-H(8) + E-E(5) = 20.
        assert_eq!(hit.score, 20);
        let aln = sw_align(&q, &t, &scoring).unwrap();
        assert_eq!(aln.score, 20);
        assert_eq!(aln.cigar(), "2R1I2R");
        assert_eq!(score_of(&aln, &q, &t, &scoring), aln.score);
    }

    #[test]
    fn traceback_score_recomputes_linear_and_affine() {
        let p = Alphabet::protein();
        let q = p.encode_str("MKTAYIAKQR").unwrap();
        let t = p.encode_str("LLMKTAGGYIAKQELL").unwrap();
        for scoring in [
            Scoring::blosum62_protein(),
            Scoring::new(SubstitutionMatrix::blosum62(), GapModel::affine(-11, -1)),
        ] {
            let aln = sw_align(&q, &t, &scoring).unwrap();
            assert!(aln.is_consistent());
            assert_eq!(
                score_of(&aln, &q, &t, &scoring),
                aln.score,
                "{:?}",
                scoring.gap
            );
            assert_eq!(sw_best(&q, &t, &scoring).score, aln.score);
        }
    }
}
