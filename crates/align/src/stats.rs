//! Karlin-Altschul alignment statistics.
//!
//! The paper controls BLAST's selectivity with an E-value and OASIS's with a
//! `minScore`, related by (Equations 2 and 3):
//!
//! ```text
//!   E = K · m · n · e^(−λ·S)            (2)
//!   minScore = ⌈ ln(K · m · n / E) / λ ⌉ (3)
//! ```
//!
//! where `m` is the query length, `n` the database size, and `λ`, `K` the
//! Karlin-Altschul scaling constants of the scoring system. This module
//! estimates `λ`, `K`, and the relative entropy `H` from a substitution
//! matrix and background residue frequencies, following Karlin & Altschul
//! (PNAS 1990) — the same machinery BLAST uses for ungapped statistics.

use crate::matrix::SubstitutionMatrix;
use crate::score::Score;

/// Robinson & Robinson (1991) amino-acid background frequencies, in the
/// matrix residue order `ARNDCQEGHILKMFPSTWYV`. These are the frequencies
/// NCBI BLAST uses for protein Karlin-Altschul parameters.
pub fn background_protein() -> [f64; 20] {
    [
        0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
        0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
    ]
}

/// Uniform nucleotide background.
pub fn background_dna() -> [f64; 4] {
    [0.25; 4]
}

/// Errors from parameter estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The expected pairwise score is non-negative; Karlin-Altschul theory
    /// requires a negative-drift random walk.
    NonNegativeExpectedScore {
        /// The offending expectation.
        expected: f64,
    },
    /// No positive score exists, so no alignment can ever score above zero.
    NoPositiveScore,
    /// Frequencies did not sum to ~1 or contained negatives.
    BadFrequencies,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NonNegativeExpectedScore { expected } => write!(
                f,
                "expected pairwise score {expected:.4} is non-negative; \
                 local-alignment statistics are undefined"
            ),
            StatsError::NoPositiveScore => write!(f, "matrix has no positive entry"),
            StatsError::BadFrequencies => write!(f, "background frequencies are invalid"),
        }
    }
}

impl std::error::Error for StatsError {}

/// The Karlin-Altschul parameters of a scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// The scale λ: unique positive solution of Σ pᵢpⱼ·e^(λ·sᵢⱼ) = 1.
    pub lambda: f64,
    /// The search-space constant K.
    pub k: f64,
    /// Relative entropy H of the aligned pair distribution (nats/position).
    pub h: f64,
}

impl KarlinParams {
    /// Estimate λ, K, H for `matrix` under `freqs` background frequencies
    /// (one per residue, matrix order).
    pub fn estimate(matrix: &SubstitutionMatrix, freqs: &[f64]) -> Result<Self, StatsError> {
        let n = matrix.alphabet_len();
        assert_eq!(freqs.len(), n, "one frequency per residue");
        let total: f64 = freqs.iter().sum();
        if freqs.iter().any(|&f| f < 0.0) || (total - 1.0).abs() > 1e-3 {
            return Err(StatsError::BadFrequencies);
        }

        // Score distribution of one aligned residue pair.
        let low = matrix.overall_min();
        let high = matrix.overall_max();
        if high <= 0 {
            return Err(StatsError::NoPositiveScore);
        }
        let span = (high - low) as usize + 1;
        let mut prob = vec![0.0f64; span];
        for a in 0..n {
            for b in 0..n {
                let s = matrix.score(a as u8, b as u8);
                prob[(s - low) as usize] += freqs[a] * freqs[b] / total / total;
            }
        }
        let expected: f64 = prob
            .iter()
            .enumerate()
            .map(|(i, p)| p * (low as f64 + i as f64))
            .sum();
        if expected >= 0.0 {
            return Err(StatsError::NonNegativeExpectedScore { expected });
        }

        let lambda = solve_lambda(&prob, low);
        // H = λ · Σ s·p(s)·e^(λs)
        let h: f64 = lambda
            * prob
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let s = low as f64 + i as f64;
                    p * s * (lambda * s).exp()
                })
                .sum::<f64>();
        let k = estimate_k(&prob, low, lambda, h);
        Ok(KarlinParams { lambda, k, h })
    }

    /// Equation 2: the E-value of alignment score `s` for a length-`m` query
    /// against a database of `n` residues.
    pub fn evalue(&self, m: u64, n: u64, s: Score) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * s as f64).exp()
    }

    /// Equation 3: the minimum alignment score whose E-value is at most `e`.
    ///
    /// Clamped below at 1 so it is always a usable OASIS `minScore`.
    pub fn min_score_for_evalue(&self, m: u64, n: u64, e: f64) -> Score {
        assert!(e > 0.0, "E-value threshold must be positive");
        let raw = ((self.k * m as f64 * n as f64 / e).ln() / self.lambda).ceil();
        (raw as Score).max(1)
    }

    /// The bit score of a raw score under these parameters.
    pub fn bit_score(&self, s: Score) -> f64 {
        (self.lambda * s as f64 - self.k.ln()) / std::f64::consts::LN_2
    }
}

/// Solve Σ p(s)·e^(λs) = 1 for λ > 0 by bisection. The function equals 1 at
/// λ = 0, dips below 1 (negative drift), and grows without bound (positive
/// maximal score), so a unique positive root exists.
fn solve_lambda(prob: &[f64], low: Score) -> f64 {
    let eval = |lambda: f64| -> f64 {
        prob.iter()
            .enumerate()
            .map(|(i, p)| p * (lambda * (low as f64 + i as f64)).exp())
            .sum::<f64>()
    };
    let mut hi = 0.5;
    while eval(hi) < 1.0 {
        hi *= 2.0;
        assert!(hi < 1e4, "lambda search diverged");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eval(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Estimate K via the convergent series of Karlin & Altschul (1990), as in
/// BLAST's `Blast_KarlinLHtoK`:
///
/// ```text
///   σ  = Σ_{j≥1} (1/j) · [ Σ_{s<0} P*ʲ(s)·e^(λs) + Σ_{s≥0} P*ʲ(s) ]
///   K  = d·λ·e^(−2σ) / ( H·(1 − e^(−λ·d)) )
/// ```
///
/// where `P*ʲ` is the j-fold convolution of the pair-score distribution and
/// `d` the lattice span (gcd of all attainable scores' offsets).
fn estimate_k(prob: &[f64], low: Score, lambda: f64, h: f64) -> f64 {
    // Lattice span d.
    let mut d: i64 = 0;
    for (i, &p) in prob.iter().enumerate() {
        if p > 0.0 {
            let s = (low as i64) + i as i64;
            d = gcd(d, s.abs());
        }
    }
    let d = d.max(1) as f64;

    const MAX_ITERS: usize = 128;
    const EPS: f64 = 1e-12;
    let span = prob.len();
    // conv = P*ʲ, supported on [j*low, j*high].
    let mut conv: Vec<f64> = prob.to_vec();
    let mut sigma = 0.0f64;
    for j in 1..=MAX_ITERS {
        let conv_low = low as f64 * j as f64;
        let mut inner = 0.0f64;
        for (i, &p) in conv.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let s = conv_low + i as f64;
            if s < 0.0 {
                inner += p * (lambda * s).exp();
            } else {
                inner += p;
            }
        }
        let term = inner / j as f64;
        sigma += term;
        if term < EPS {
            break;
        }
        if j < MAX_ITERS {
            // Convolve with the base distribution for the next round.
            let mut next = vec![0.0f64; conv.len() + span - 1];
            for (i, &a) in conv.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (k, &b) in prob.iter().enumerate() {
                    next[i + k] += a * b;
                }
            }
            conv = next;
        }
    }
    let k = d * lambda * (-2.0 * sigma).exp() / (h * (1.0 - (-lambda * d).exp()));
    k.clamp(1e-6, 10.0)
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_bioseq::AlphabetKind;

    fn unit_dna_params() -> KarlinParams {
        KarlinParams::estimate(
            &SubstitutionMatrix::unit(AlphabetKind::Dna),
            &background_dna(),
        )
        .unwrap()
    }

    #[test]
    fn lambda_closed_form_for_unit_dna() {
        // For +1/−1 with p(match) = 1/4: Σ p·e^{λs} = 1 means
        // (1/4)e^λ + (3/4)e^{−λ} = 1, i.e. e^λ = 2 ± 1 → λ = ln 3.
        let p = unit_dna_params();
        assert!(
            (p.lambda - 3.0f64.ln()).abs() < 1e-9,
            "lambda = {}, want ln 3",
            p.lambda
        );
    }

    #[test]
    fn h_is_positive_and_matches_formula() {
        let p = unit_dna_params();
        // H = λ·E[s·e^{λs}] with λ = ln3: (ln3)·[1·(1/4)·3 + (−1)·(3/4)·(1/3)]
        //   = (ln3)·(3/4 − 1/4) = ln3 / 2.
        assert!((p.h - 3.0f64.ln() / 2.0).abs() < 1e-9, "h = {}", p.h);
    }

    #[test]
    fn k_is_plausible() {
        let p = unit_dna_params();
        assert!(p.k > 0.0 && p.k <= 1.0, "k = {}", p.k);
    }

    #[test]
    fn blosum62_parameters_near_published_values() {
        // NCBI publishes λ ≈ 0.3176, K ≈ 0.134, H ≈ 0.40 for ungapped
        // BLOSUM62 with Robinson frequencies.
        let p =
            KarlinParams::estimate(&SubstitutionMatrix::blosum62(), &background_protein()).unwrap();
        assert!((p.lambda - 0.3176).abs() < 0.01, "lambda = {}", p.lambda);
        assert!((p.h - 0.40).abs() < 0.05, "h = {}", p.h);
        assert!((p.k - 0.134).abs() < 0.05, "k = {}", p.k);
    }

    #[test]
    fn pam30_parameters_estimable() {
        let p =
            KarlinParams::estimate(&SubstitutionMatrix::pam30(), &background_protein()).unwrap();
        // PAM30 ungapped: λ ≈ 0.34, K ≈ 0.28, H ≈ 2.6 (NCBI tables). Allow
        // slack since the embedded matrix may deviate in a few entries.
        assert!(p.lambda > 0.25 && p.lambda < 0.45, "lambda = {}", p.lambda);
        assert!(p.h > 1.5 && p.h < 3.5, "h = {}", p.h);
        assert!(p.k > 0.01 && p.k < 1.0, "k = {}", p.k);
    }

    #[test]
    fn evalue_decreases_with_score() {
        let p = unit_dna_params();
        let e10 = p.evalue(16, 1_000_000, 10);
        let e12 = p.evalue(16, 1_000_000, 12);
        assert!(e12 < e10);
        assert!(e10 > 0.0);
    }

    #[test]
    fn evalue_scales_linearly_with_search_space() {
        let p = unit_dna_params();
        let e1 = p.evalue(16, 1_000_000, 10);
        let e2 = p.evalue(32, 1_000_000, 10);
        let e3 = p.evalue(16, 2_000_000, 10);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((e3 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equation3_roundtrip() {
        // minScore(E) must be the smallest score with evalue <= E.
        let p = unit_dna_params();
        let (m, n) = (16u64, 40_000_000u64);
        for e in [1.0, 10.0, 100.0, 20_000.0] {
            let s = p.min_score_for_evalue(m, n, e);
            assert!(p.evalue(m, n, s) <= e + 1e-9, "E={e}: score {s} too weak");
            if s > 1 {
                assert!(
                    p.evalue(m, n, s - 1) > e,
                    "E={e}: score {} would already satisfy it",
                    s - 1
                );
            }
        }
    }

    #[test]
    fn higher_evalue_means_lower_min_score() {
        let p = unit_dna_params();
        let strict = p.min_score_for_evalue(16, 40_000_000, 1.0);
        let relaxed = p.min_score_for_evalue(16, 40_000_000, 20_000.0);
        assert!(strict > relaxed, "{strict} vs {relaxed}");
        assert!(relaxed >= 1);
    }

    #[test]
    fn min_score_clamped_to_one() {
        let p = unit_dna_params();
        // Absurdly relaxed threshold on a tiny database.
        assert_eq!(p.min_score_for_evalue(4, 10, 1e12), 1);
    }

    #[test]
    fn rejects_positive_drift() {
        // match +1 / mismatch -1 on a 2-letter-dominated background would
        // have positive drift; emulate with a match-heavy matrix instead:
        let m = SubstitutionMatrix::from_fn("pos", AlphabetKind::Dna, |_, _| 1);
        let err = KarlinParams::estimate(&m, &background_dna()).unwrap_err();
        assert!(matches!(err, StatsError::NonNegativeExpectedScore { .. }));
    }

    #[test]
    fn rejects_all_negative_matrix() {
        let m = SubstitutionMatrix::from_fn("neg", AlphabetKind::Dna, |_, _| -1);
        let err = KarlinParams::estimate(&m, &background_dna()).unwrap_err();
        assert_eq!(err, StatsError::NoPositiveScore);
    }

    #[test]
    fn rejects_bad_frequencies() {
        let m = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let err = KarlinParams::estimate(&m, &[0.9, 0.9, 0.9, 0.9]).unwrap_err();
        assert_eq!(err, StatsError::BadFrequencies);
    }

    #[test]
    fn bit_score_monotonic() {
        let p = unit_dna_params();
        assert!(p.bit_score(20) > p.bit_score(10));
    }

    #[test]
    fn lattice_matrices_scale_consistently() {
        // Doubling every score halves λ exactly and exercises the d = 2
        // lattice path in the K series (gcd of {+2, −2} is 2).
        let unit = unit_dna_params();
        let doubled = KarlinParams::estimate(
            &SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 2, -2),
            &background_dna(),
        )
        .unwrap();
        assert!(
            (doubled.lambda - unit.lambda / 2.0).abs() < 1e-9,
            "λ(2x) = {} vs λ/2 = {}",
            doubled.lambda,
            unit.lambda / 2.0
        );
        // H in nats/position is scale-invariant (λ·E[s·e^{λs}] with s ↦ 2s,
        // λ ↦ λ/2 cancels).
        assert!((doubled.h - unit.h).abs() < 1e-9);
        // K is scale-invariant too; the series must agree across lattices.
        assert!(
            (doubled.k - unit.k).abs() < 0.02,
            "K drifted across lattice scaling: {} vs {}",
            doubled.k,
            unit.k
        );
        // E-values of corresponding scores must therefore agree closely.
        let e1 = unit.evalue(16, 1_000_000, 9);
        let e2 = doubled.evalue(16, 1_000_000, 18);
        assert!((e1 / e2 - 1.0).abs() < 0.05, "{e1} vs {e2}");
    }

    #[test]
    fn empirical_tail_matches_karlin_altschul_order_of_magnitude() {
        // Monte-Carlo calibration: the number of random sequence pairs whose
        // best local alignment reaches score s should be ≈ E(s) summed over
        // the pairs. We check the prediction is within ~4x over a decade of
        // scores — Karlin-Altschul is an asymptotic theory, so order of
        // magnitude is the contract (and all the E-value machinery needs).
        use crate::gaps::{GapModel, Scoring};
        use crate::sw::sw_best;
        let p = unit_dna_params();
        // Gapless comparison is what the theory describes; use a gap cost
        // large enough to forbid gaps.
        let scoring = Scoring::new(
            SubstitutionMatrix::unit(AlphabetKind::Dna),
            GapModel::linear(-100),
        );
        let m = 24usize;
        let n = 300usize;
        let pairs = 600usize;
        // Deterministic xorshift residues.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as u32
        };
        let mut counts = std::collections::BTreeMap::<Score, usize>::new();
        for _ in 0..pairs {
            let q: Vec<u8> = (0..m).map(|_| (next() % 4) as u8).collect();
            let t: Vec<u8> = (0..n).map(|_| (next() % 4) as u8).collect();
            let s = sw_best(&q, &t, &scoring).score;
            *counts.entry(s).or_default() += 1;
        }
        for s in [7, 8, 9] {
            let observed: usize = counts.range(s..).map(|(_, c)| c).sum();
            let expected = p.evalue(m as u64, n as u64, s) * pairs as f64;
            assert!(
                observed as f64 <= expected * 4.0 + 4.0 && observed as f64 >= expected / 4.0 - 1.0,
                "score {s}: observed {observed}, K-A expected {expected:.1}"
            );
        }
    }
}
