#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # oasis-core
//!
//! OASIS — an **O**nline and **A**ccurate **S**earch technique for
//! **I**nferring local-alignments on **S**equences — the primary
//! contribution of Meek, Patel & Kasetty (VLDB 2003), reimplemented in Rust.
//!
//! OASIS evaluates local-alignment queries *exactly* (never missing a match
//! that Smith-Waterman would find) while exploring only a small fraction of
//! the database. It runs a best-first (A*) search whose frontier is the set
//! of suffix-tree nodes reached so far:
//!
//! * each search node carries a column of alignment scores (`C`), the best
//!   score found along its path (`Gmax`), and an optimistic upper bound on
//!   any score obtainable by descending further (`f`);
//! * a priority queue ordered by `f` guarantees that when an *accepted* node
//!   reaches the front, no other frontier node can beat its score — so hits
//!   stream out **online, in non-increasing score order**;
//! * three pruning rules (non-positive scores, no-improvement-over-`Gmax`,
//!   threshold failure) discard alignment states that are either covered by
//!   other tree paths or provably unable to reach `minScore`.
//!
//! The search is generic over [`oasis_suffix::SuffixTreeAccess`], so it runs
//! identically over the in-memory tree and the disk-resident tree of
//! `oasis-storage`.
//!
//! Modules:
//!
//! * [`heuristic`] — the `h` vector of Algorithm 2 (§3.1).
//! * [`node`] — search-node representation and queue ordering.
//! * [`frontier`] — the best-first priority queue and its score bound.
//! * [`mod@expand`] — Algorithm 3: column-wise DP over one suffix-tree arc with
//!   alignment pruning and early accept/unviable exits.
//! * [`driver`] — Algorithms 1–2 as a resumable step-based state machine
//!   that yields hits incrementally (what `oasis-engine` schedules).
//! * [`search`] — configuration, results, and the iterator facade over the
//!   driver, with online per-sequence result reporting.
//! * [`affine`] — the affine-gap extension the paper lists as future work
//!   (§6), using the three-matrix (Gotoh) recurrence.

pub mod affine;
pub mod driver;
pub mod evalue;
pub mod expand;
pub mod frontier;
pub mod heuristic;
pub mod node;
pub mod search;

pub use driver::{root_node, SearchDriver, StepOutcome};
pub use evalue::{EvalueOrderedSearch, EvaluedHit};
pub use expand::{expand, expand_reference, expand_with_rules, ExpandScratch, PruneRules};
pub use frontier::Frontier;
pub use heuristic::heuristic_vector;
pub use node::{SearchNode, Status};
pub use search::{Hit, OasisParams, OasisSearch, ReportMode, SearchStats};
