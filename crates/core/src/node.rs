//! Search-node representation and priority-queue ordering (§3 of the paper).

use std::cmp::Ordering;

use oasis_align::Score;
use oasis_suffix::NodeHandle;

/// "Indicates the status of the search node" (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// "A stronger alignment other than that already found along this path
    /// is possible, and the minScore threshold can be reached."
    Viable,
    /// "The strongest possible alignment of the query with this node or any
    /// of its descendants has been found, and it passes the minScore
    /// threshold." When an accepted node reaches the top of the queue its
    /// alignment is reported online.
    Accepted,
    /// "No possible extension of this node can result in an alignment with
    /// the necessary strength." Unviable nodes are pruned from the search.
    Unviable,
}

/// One node of the OASIS search tree. Field names follow §3 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchNode {
    /// `pt`: the corresponding suffix-tree node.
    pub handle: NodeHandle,
    /// Depth (symbols from the root) of the last DP column this node
    /// computed. Equals the suffix-tree depth of `handle` for viable nodes;
    /// may be smaller when expansion stopped early (accepted/unviable).
    pub depth: u32,
    /// `f`: "the maximum possible score that can be achieved by further
    /// expanding this node". For accepted nodes, `f == g == gmax`.
    pub f: Score,
    /// `g`: "the maximum score in C, or the best score ending at node pt".
    pub g: Score,
    /// `Gmax(path)`: "the maximum score alignment found along this path".
    pub gmax: Score,
    /// Path depth at which `gmax` was achieved (target window length).
    pub gmax_depth: u32,
    /// Query prefix length at which `gmax` was achieved.
    pub gmax_qend: u32,
    /// Node status.
    pub status: Status,
    /// `C`: per-query-position alignment scores ending at `depth`
    /// (length `n + 1`, `NEG_INF` = pruned). Empty for accepted/unviable
    /// nodes — "we need not maintain an alignment column-vector for this
    /// node" (§3.3).
    pub c: Box<[Score]>,
    /// Affine-gap mode only: the Gotoh `E` column (alignments ending in a
    /// target-consuming gap run). Empty in linear-gap mode and at the root
    /// (meaning "all −∞": no gap is open).
    pub e: Box<[Score]>,
    /// Insertion sequence number: the deterministic final tie-breaker.
    pub seq: u64,
}

impl SearchNode {
    /// Is this node accepted?
    pub fn is_accepted(&self) -> bool {
        self.status == Status::Accepted
    }
}

/// Max-heap ordering for the priority queue: highest `f` first; ties prefer
/// accepted nodes (report as soon as correctness allows), then deeper nodes
/// (tends to finish paths, keeping the queue small), then insertion order
/// (full determinism).
#[derive(Debug)]
pub struct QueueEntry(pub SearchNode);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .f
            .cmp(&other.0.f)
            .then_with(|| self.0.is_accepted().cmp(&other.0.is_accepted()))
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn node(f: Score, status: Status, depth: u32, seq: u64) -> QueueEntry {
        QueueEntry(SearchNode {
            handle: NodeHandle::internal(0),
            depth,
            f,
            g: 0,
            gmax: 0,
            gmax_depth: 0,
            gmax_qend: 0,
            status,
            c: Box::new([]),
            e: Box::new([]),
            seq,
        })
    }

    #[test]
    fn highest_f_pops_first() {
        let mut heap = BinaryHeap::new();
        heap.push(node(3, Status::Viable, 1, 0));
        heap.push(node(7, Status::Viable, 1, 1));
        heap.push(node(5, Status::Viable, 1, 2));
        assert_eq!(heap.pop().unwrap().0.f, 7);
        assert_eq!(heap.pop().unwrap().0.f, 5);
        assert_eq!(heap.pop().unwrap().0.f, 3);
    }

    #[test]
    fn accepted_beats_viable_on_tie() {
        let mut heap = BinaryHeap::new();
        heap.push(node(4, Status::Viable, 9, 0));
        heap.push(node(4, Status::Accepted, 1, 1));
        assert!(heap.pop().unwrap().0.is_accepted());
    }

    #[test]
    fn deeper_pops_first_on_tie() {
        let mut heap = BinaryHeap::new();
        heap.push(node(4, Status::Viable, 2, 0));
        heap.push(node(4, Status::Viable, 5, 1));
        assert_eq!(heap.pop().unwrap().0.depth, 5);
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut heap = BinaryHeap::new();
        heap.push(node(4, Status::Viable, 2, 7));
        heap.push(node(4, Status::Viable, 2, 3));
        assert_eq!(heap.pop().unwrap().0.seq, 3);
        assert_eq!(heap.pop().unwrap().0.seq, 7);
    }
}
