//! The heuristic vector `h` (Algorithm 2, §3.1 of the paper).
//!
//! "Each entry `h_i` in the vector `h` represents the maximum possible
//! alignment score of `q_{i+1} … q_n` with any arbitrary target. […] `h_n`
//! is set to zero, since the leftover portion of the query is the empty
//! string. We can then inductively calculate the remaining values:
//! `h_i = h_{i+1} +` the maximum score for the replacement of `q_{i+1}`."
//!
//! Two refinements keep the bound *admissible* for arbitrary matrices (the
//! paper assumes every residue has a positive best replacement and
//! non-positive gap scores):
//!
//! * a local alignment may end anywhere, so the best completion from
//!   position `i` is the best **prefix sum** of future per-position maxima:
//!   `h_i = max(0, best_i+1 + h_{i+1})`;
//! * a completion may also *skip* a query residue with a gap, so the
//!   per-position contribution is `max(row_max(q_k), gap_per_symbol)` (for
//!   affine gaps, `extend` bounds every gapped symbol's contribution since
//!   `open ≤ 0`).
//!
//! For PAM30/BLOSUM62/unit matrices both refinements coincide with the
//! paper's plain sum.

use oasis_align::{GapModel, Score, Scoring};

/// Compute the heuristic vector for `query` (length `n`); `h[i]` bounds the
/// score obtainable by extending an alignment that currently ends at query
/// position `i` (0-based prefix length). `h[n] = 0`, and `h` is
/// non-increasing... strictly: `h[i] >= h[i+1]` never holds in general, but
/// `h[i] >= 0` always.
pub fn heuristic_vector(query: &[u8], scoring: &Scoring) -> Vec<Score> {
    let n = query.len();
    let per_gap = match scoring.gap {
        GapModel::Linear { per_symbol } => per_symbol,
        // `open <= 0`, so `extend` upper-bounds every gapped symbol's score.
        GapModel::Affine { extend, .. } => extend,
    };
    let mut h = vec![0 as Score; n + 1];
    for i in (0..n).rev() {
        let contribution = scoring.matrix.row_max(query[i]).max(per_gap);
        h[i] = (contribution + h[i + 1]).max(0);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_align::{Scoring, SubstitutionMatrix};
    use oasis_bioseq::{Alphabet, AlphabetKind};

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::dna().encode_str(s).unwrap()
    }

    #[test]
    fn paper_example_tacg() {
        // §3.3: query TACG, unit matrix: h = [4, 3, 2, 1, 0].
        let h = heuristic_vector(&dna("TACG"), &Scoring::unit_dna());
        assert_eq!(h, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn empty_query() {
        assert_eq!(heuristic_vector(&[], &Scoring::unit_dna()), vec![0]);
    }

    #[test]
    fn blosum62_uses_diagonal_maxima() {
        // For BLOSUM62 the row max is the diagonal; h[0] is the sum of
        // self-scores.
        let p = Alphabet::protein();
        let q = p.encode_str("WWC").unwrap();
        let h = heuristic_vector(&q, &Scoring::blosum62_protein());
        assert_eq!(h, vec![11 + 11 + 9, 11 + 9, 9, 0]);
    }

    #[test]
    fn admissible_with_all_negative_rows() {
        // A matrix where one residue can never score positively: the bound
        // must clamp at the max-prefix-sum, not go negative.
        let m = SubstitutionMatrix::from_fn("neg-row", AlphabetKind::Dna, |a, b| {
            if a == 0 {
                -5 // residue A never matches anything
            } else if a == b {
                2
            } else {
                -1
            }
        });
        let scoring = Scoring::new(m, oasis_align::GapModel::linear(-1));
        // query = A C: best completion from 0 can skip A with a gap (-1)
        // then match C (+2) = +1, or just stop (0) → max(0, -1 + 2) = 1.
        let h = heuristic_vector(&dna("AC"), &scoring);
        assert_eq!(h[2], 0);
        assert_eq!(h[1], 2);
        assert_eq!(h[0], 1); // max(0, max(-5, -1) + 2)
    }

    #[test]
    fn h_is_nonnegative_and_bounds_suffix_sums() {
        let q = dna("TACGTTGACA");
        let scoring = Scoring::unit_dna();
        let h = heuristic_vector(&q, &scoring);
        for (i, &v) in h.iter().enumerate() {
            assert!(v >= 0);
            // For the unit matrix, h[i] = n - i exactly.
            assert_eq!(v, (q.len() - i) as i32);
        }
    }

    #[test]
    fn affine_gap_uses_extend_bound() {
        let scoring = Scoring::new(
            SubstitutionMatrix::unit(AlphabetKind::Dna),
            oasis_align::GapModel::affine(-3, -1),
        );
        let h = heuristic_vector(&dna("AC"), &scoring);
        assert_eq!(h, vec![2, 1, 0]);
    }
}
