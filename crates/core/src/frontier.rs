//! The search frontier: the best-first priority queue of Algorithm 1 and
//! the score bound it implies.
//!
//! [`Frontier`] wraps the max-heap of [`QueueEntry`]s (highest `f` first,
//! with the deterministic tie-breakers of [`crate::node`]) and exposes the
//! single fact the online guarantee rests on: [`Frontier::bound`], an upper
//! bound on the score of anything the search can still produce. When an
//! accepted node's score meets that bound, no other frontier node can beat
//! it — so it is safe to report immediately.

use std::collections::BinaryHeap;

use oasis_align::Score;

use crate::node::{QueueEntry, SearchNode};

/// The best-first priority queue over [`SearchNode`]s.
///
/// Ordering is inherited from [`QueueEntry`]: highest `f` first, ties prefer
/// accepted nodes, then deeper nodes, then insertion order — fully
/// deterministic for a given sequence of pushes.
#[derive(Debug, Default)]
pub struct Frontier {
    heap: BinaryHeap<QueueEntry>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Add `node` to the frontier.
    pub fn push(&mut self, node: SearchNode) {
        self.heap.push(QueueEntry(node));
    }

    /// Remove and return the best node (highest `f`), if any.
    pub fn pop(&mut self) -> Option<SearchNode> {
        self.heap.pop().map(|QueueEntry(node)| node)
    }

    /// Upper bound on the score of any alignment reachable from the
    /// frontier: the `f` value of the best node, or `None` when empty.
    pub fn bound(&self) -> Option<Score> {
        self.heap.peek().map(|e| e.0.f)
    }

    /// Number of nodes currently on the frontier.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the frontier empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discard every frontier node (used by the early-stop exit).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Status;
    use oasis_suffix::NodeHandle;

    fn node(f: Score, seq: u64) -> SearchNode {
        SearchNode {
            handle: NodeHandle::internal(0),
            depth: 0,
            f,
            g: 0,
            gmax: 0,
            gmax_depth: 0,
            gmax_qend: 0,
            status: Status::Viable,
            c: Box::new([]),
            e: Box::new([]),
            seq,
        }
    }

    #[test]
    fn pops_in_non_increasing_f_order() {
        let mut frontier = Frontier::new();
        for (i, f) in [3, 9, 1, 7, 5].into_iter().enumerate() {
            frontier.push(node(f, i as u64));
        }
        let mut order = Vec::new();
        while let Some(n) = frontier.pop() {
            order.push(n.f);
        }
        assert_eq!(order, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn bound_tracks_best_f() {
        let mut frontier = Frontier::new();
        assert_eq!(frontier.bound(), None);
        frontier.push(node(4, 0));
        assert_eq!(frontier.bound(), Some(4));
        frontier.push(node(6, 1));
        assert_eq!(frontier.bound(), Some(6));
        frontier.pop();
        assert_eq!(frontier.bound(), Some(4));
    }

    #[test]
    fn len_and_clear() {
        let mut frontier = Frontier::new();
        frontier.push(node(1, 0));
        frontier.push(node(2, 1));
        assert_eq!(frontier.len(), 2);
        assert!(!frontier.is_empty());
        frontier.clear();
        assert!(frontier.is_empty());
        assert_eq!(frontier.bound(), None);
    }
}
