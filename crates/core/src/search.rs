//! Algorithms 1 and 2: initialization, the best-first loop, and online
//! result reporting.
//!
//! [`OasisSearch`] is an [`Iterator`]: each `next()` call advances the A*
//! search just far enough to produce the next hit, so "the scientist may
//! want to abort the query after seeing the top few results" costs exactly
//! as much search as those results required. Hits arrive in non-increasing
//! score order — the paper's *online* property.
//!
//! Reporting duplicates the paper's S-W-compatible mode: "the single
//! strongest alignment for each sequence in the database". A sequence is
//! reported the first time any accepted subtree covers it; by the queue
//! ordering that first report carries the sequence's maximal score.

use std::collections::{BinaryHeap, VecDeque};

use oasis_align::{sw_align, Alignment, GapModel, KarlinParams, Score, Scoring, NEG_INF};
use oasis_bioseq::{SeqId, SequenceDatabase};
use oasis_suffix::SuffixTreeAccess;

use crate::affine::{expand_affine, AffineScratch};
use crate::expand::{expand, ExpandScratch};
use crate::heuristic::heuristic_vector;
use crate::node::{QueueEntry, SearchNode, Status};

/// What an accepted node reports (§3: "several approaches can be adopted
/// to the reporting of alignments").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// "Duplicate the behavior of S-W, reporting only the single strongest
    /// alignment for each sequence in the database" — the paper's mode and
    /// the default.
    BestPerSequence,
    /// Report every occurrence under every accepted node: one hit per leaf,
    /// still online in non-increasing score order. Use to enumerate *all*
    /// places a query aligns, not just each sequence's best.
    AllOccurrences,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OasisParams {
    /// Minimum alignment score to report (the paper's `minScore`; ≥ 1).
    pub min_score: Score,
    /// Stop as soon as every database sequence has been reported (§3.3:
    /// the search continues "to identify maximal alignments for all
    /// sequences, or until the queue is empty"). Only meaningful in
    /// [`ReportMode::BestPerSequence`].
    pub early_stop_all_sequences: bool,
    /// Reporting behaviour for accepted nodes.
    pub report: ReportMode,
}

impl OasisParams {
    /// Params with an explicit score threshold.
    pub fn with_min_score(min_score: Score) -> Self {
        assert!(min_score >= 1, "minScore must be positive");
        OasisParams {
            min_score,
            early_stop_all_sequences: true,
            report: ReportMode::BestPerSequence,
        }
    }

    /// Switch to [`ReportMode::AllOccurrences`].
    pub fn all_occurrences(mut self) -> Self {
        self.report = ReportMode::AllOccurrences;
        self.early_stop_all_sequences = false;
        self
    }

    /// Params from an E-value threshold via the paper's Equation 3.
    pub fn from_evalue(
        stats: &KarlinParams,
        query_len: u64,
        db_residues: u64,
        evalue: f64,
    ) -> Self {
        Self::with_min_score(stats.min_score_for_evalue(query_len, db_residues, evalue))
    }
}

/// One reported alignment: the strongest local alignment of the query within
/// one database sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// The database sequence.
    pub seq: SeqId,
    /// The alignment score (the sequence's maximum).
    pub score: Score,
    /// Global text position where the matched target window starts (the
    /// suffix-tree path start).
    pub t_start: u32,
    /// Length of the matched target window (path depth at the best score).
    pub t_len: u32,
    /// One past the last aligned query position.
    pub q_end: u32,
}

impl Hit {
    /// E-value of this hit under `stats` (Equation 2).
    pub fn evalue(&self, stats: &KarlinParams, query_len: u64, db_residues: u64) -> f64 {
        stats.evalue(query_len, db_residues, self.score)
    }

    /// Recover the operation-level alignment by a bounded Smith-Waterman
    /// re-run over the hit's target window. The window is tiny (at most
    /// `t_len` symbols), so this costs O(query × t_len).
    pub fn alignment(&self, db: &SequenceDatabase, query: &[u8], scoring: &Scoring) -> Alignment {
        let window = &db.text()[self.t_start as usize..(self.t_start + self.t_len) as usize];
        let mut aln = sw_align(query, window, scoring)
            .expect("a reported hit implies a positive-scoring alignment");
        debug_assert_eq!(aln.score, self.score, "window re-alignment must agree");
        aln.t_start += self.t_start as usize;
        aln.t_end += self.t_start as usize;
        aln
    }
}

/// Instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DP columns computed — the filtering metric of the paper's Figure 4
    /// (S-W computes one column per database residue).
    pub columns_expanded: u64,
    /// Viable nodes whose children were expanded.
    pub nodes_expanded: u64,
    /// Nodes pushed onto the priority queue.
    pub nodes_enqueued: u64,
    /// Largest queue size observed.
    pub max_queue: usize,
    /// Hits emitted.
    pub hits_emitted: u64,
}

/// Build the root search node (Algorithm 2). Returns `None` when even the
/// root cannot reach `min_score` (e.g. an empty query).
///
/// Public so alternative search drivers (e.g. the frontier-ordering
/// ablation in `oasis-bench`) can reuse the initialization.
pub fn root_node(query: &[u8], h: &[Score], min_score: Score) -> Option<SearchNode> {
    let n = query.len();
    let c: Box<[Score]> = (0..=n)
        .map(|i| if h[i] >= min_score { 0 } else { NEG_INF })
        .collect();
    let f = (0..=n)
        .filter(|&i| c[i] != NEG_INF)
        .map(|i| h[i])
        .max()
        .unwrap_or(NEG_INF);
    if f < min_score {
        return None;
    }
    Some(SearchNode {
        handle: oasis_suffix::NodeHandle::internal(0),
        depth: 0,
        f,
        g: 0,
        gmax: 0,
        gmax_depth: 0,
        gmax_qend: 0,
        status: Status::Viable,
        c,
        e: Box::new([]),
        seq: 0,
    })
}

/// The OASIS search: an iterator of [`Hit`]s in non-increasing score order.
pub struct OasisSearch<'a, T: SuffixTreeAccess + ?Sized> {
    tree: &'a T,
    db: &'a SequenceDatabase,
    query: Vec<u8>,
    scoring: &'a Scoring,
    h: Vec<Score>,
    min_score: Score,
    early_stop: bool,
    report: ReportMode,
    heap: BinaryHeap<QueueEntry>,
    pending: VecDeque<Hit>,
    reported: Vec<bool>,
    reported_count: u32,
    stats: SearchStats,
    next_seq: u64,
    scratch: ExpandScratch,
    affine_scratch: AffineScratch,
    kids: Vec<oasis_suffix::NodeHandle>,
}

impl<'a, T: SuffixTreeAccess + ?Sized> OasisSearch<'a, T> {
    /// Set up a search of `query` against `db` through its suffix tree.
    ///
    /// The tree must index exactly `db` (same text); `query` must be encoded
    /// with `db`'s alphabet.
    pub fn new(
        tree: &'a T,
        db: &'a SequenceDatabase,
        query: &[u8],
        scoring: &'a Scoring,
        params: &OasisParams,
    ) -> Self {
        assert!(params.min_score >= 1, "minScore must be positive");
        assert_eq!(
            tree.text_len(),
            db.text_len(),
            "suffix tree does not index this database"
        );
        debug_assert!(query.iter().all(|&c| (c as usize) < db.alphabet().len()));
        let h = heuristic_vector(query, scoring);
        let mut heap = BinaryHeap::new();
        if let Some(root) = root_node(query, &h, params.min_score) {
            heap.push(QueueEntry(root));
        }
        OasisSearch {
            tree,
            db,
            query: query.to_vec(),
            scoring,
            h,
            min_score: params.min_score,
            early_stop: params.early_stop_all_sequences,
            report: params.report,
            heap,
            pending: VecDeque::new(),
            reported: vec![false; db.num_sequences() as usize],
            reported_count: 0,
            stats: SearchStats::default(),
            next_seq: 1,
            scratch: ExpandScratch::default(),
            affine_scratch: AffineScratch::default(),
            kids: Vec::new(),
        }
    }

    /// Counters so far (final after the iterator is exhausted).
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// An upper bound on the score of any hit this search can still emit,
    /// or `None` when the search is exhausted. This is what makes the
    /// E-value-ordered reporting of [`crate::evalue`] possible: a held-back
    /// hit may be released once no future hit can undercut its E-value.
    pub fn score_bound(&self) -> Option<Score> {
        let heap_bound = self.heap.peek().map(|e| e.0.f);
        let pending_bound = self.pending.front().map(|h| h.score);
        match (heap_bound, pending_bound) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drain the search, returning all hits and the final statistics.
    pub fn run(mut self) -> (Vec<Hit>, SearchStats) {
        let mut hits = Vec::new();
        for hit in &mut self {
            hits.push(hit);
        }
        (hits, self.stats)
    }

    fn report_accepted(&mut self, node: &SearchNode) {
        debug_assert!(node.gmax >= self.min_score);
        let mut leaves = Vec::new();
        self.tree.leaves_under(node.handle, &mut |p| leaves.push(p));
        leaves.sort_unstable();
        for p in leaves {
            let seq = self.db.seq_of_position(p);
            match self.report {
                ReportMode::BestPerSequence => {
                    let flag = &mut self.reported[seq as usize];
                    if *flag {
                        continue;
                    }
                    *flag = true;
                    self.reported_count += 1;
                }
                ReportMode::AllOccurrences => {}
            }
            self.pending.push_back(Hit {
                seq,
                score: node.gmax,
                t_start: p,
                t_len: node.gmax_depth,
                q_end: node.gmax_qend,
            });
        }
    }

    fn expand_children(&mut self, node: &SearchNode) {
        self.stats.nodes_expanded += 1;
        let mut kids = std::mem::take(&mut self.kids);
        self.tree.children_into(node.handle, &mut kids);
        for &child in &kids {
            let seq = self.next_seq;
            self.next_seq += 1;
            let new = match self.scoring.gap {
                GapModel::Linear { .. } => expand(
                    self.tree,
                    node,
                    child,
                    &self.query,
                    self.scoring,
                    &self.h,
                    self.min_score,
                    seq,
                    &mut self.scratch,
                    &mut self.stats.columns_expanded,
                ),
                GapModel::Affine { open, extend } => expand_affine(
                    self.tree,
                    node,
                    child,
                    &self.query,
                    &self.scoring.matrix,
                    open,
                    extend,
                    &self.h,
                    self.min_score,
                    seq,
                    &mut self.affine_scratch,
                    &mut self.stats.columns_expanded,
                ),
            };
            match new.status {
                Status::Unviable => {}
                Status::Viable | Status::Accepted => {
                    self.heap.push(QueueEntry(new));
                    self.stats.nodes_enqueued += 1;
                }
            }
        }
        self.kids = kids;
        self.stats.max_queue = self.stats.max_queue.max(self.heap.len());
    }
}

impl<T: SuffixTreeAccess + ?Sized> Iterator for OasisSearch<'_, T> {
    type Item = Hit;

    fn next(&mut self) -> Option<Hit> {
        loop {
            if let Some(hit) = self.pending.pop_front() {
                self.stats.hits_emitted += 1;
                return Some(hit);
            }
            if self.early_stop
                && self.report == ReportMode::BestPerSequence
                && self.reported_count == self.db.num_sequences()
            {
                self.heap.clear();
                return None;
            }
            let QueueEntry(node) = self.heap.pop()?;
            match node.status {
                Status::Accepted => self.report_accepted(&node),
                Status::Viable => self.expand_children(&node),
                Status::Unviable => unreachable!("unviable nodes are never enqueued"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_align::{GapModel, SubstitutionMatrix, SwScanner};
    use oasis_bioseq::{Alphabet, AlphabetKind, DatabaseBuilder};
    use oasis_suffix::SuffixTree;

    fn dna_db(seqs: &[&str]) -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn search_all(db: &SequenceDatabase, query: &str, min_score: Score) -> (Vec<Hit>, SearchStats) {
        let tree = SuffixTree::build(db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str(query).unwrap();
        let params = OasisParams::with_min_score(min_score);
        OasisSearch::new(&tree, db, &q, &scoring, &params).run()
    }

    #[test]
    fn paper_walkthrough_finds_tacg() {
        // §3.3 end state: the maximum local alignment is TACG at position 2
        // with score 4.
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, stats) = search_all(&db, "TACG", 1);
        assert_eq!(hits.len(), 1);
        let hit = hits[0];
        assert_eq!(hit.seq, 0);
        assert_eq!(hit.score, 4);
        assert_eq!(hit.t_start, 2);
        assert_eq!(hit.t_len, 4);
        assert_eq!(hit.q_end, 4);
        assert!(stats.columns_expanded > 0);
        assert!(stats.hits_emitted == 1);
    }

    #[test]
    fn hit_alignment_recovers_operations() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let hits: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();
        let aln = hits[0].alignment(&db, &q, &scoring);
        assert_eq!(aln.score, 4);
        assert_eq!(aln.cigar(), "4R");
        assert_eq!(aln.t_start, 2);
        assert_eq!(aln.t_end, 6);
    }

    #[test]
    fn scores_arrive_in_non_increasing_order() {
        let db = dna_db(&[
            "AGTACGCCTAG", // TACG exact: 4
            "TACCG",       // TAC-G: 3
            "GGTAGG",      // TA..: 2
            "CCCCCC",      // C: 1
        ]);
        let (hits, _) = search_all(&db, "TACG", 1);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(hits[0].score, 4);
    }

    #[test]
    fn matches_smith_waterman_per_sequence() {
        let db = dna_db(&[
            "AGTACGCCTAG",
            "TACCG",
            "GGTAGG",
            "CCCCCC",
            "TTTTTTT",
            "ACGTACGTACGT",
            "GATTACA",
        ]);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        for min_score in 1..=4 {
            let (hits, _) = search_all(&db, "TACG", min_score);
            let sw = SwScanner::new().scan(&db, &q, &scoring, min_score);
            let mut got: Vec<(SeqId, Score)> = hits.iter().map(|h| (h.seq, h.score)).collect();
            got.sort_unstable();
            let mut want: Vec<(SeqId, Score)> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "min_score {min_score}");
        }
    }

    #[test]
    fn min_score_filters_results() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "CCCCCC"]);
        let (hits, _) = search_all(&db, "TACG", 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 0);
    }

    #[test]
    fn no_results_when_threshold_unreachable() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, stats) = search_all(&db, "TACG", 5);
        assert!(hits.is_empty());
        // The root itself is unviable (f = 4 < 5): nothing is expanded.
        assert_eq!(stats.nodes_expanded, 0);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, _) = search_all(&db, "", 1);
        assert!(hits.is_empty());
    }

    #[test]
    fn online_prefix_equals_full_run_prefix() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG", "CCCCCC", "GATTACA"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let all: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();
        let top2: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params)
            .take(2)
            .collect();
        assert_eq!(&all[..2], &top2[..]);
    }

    #[test]
    fn duplicate_sequences_each_reported_once() {
        let db = dna_db(&["TACG", "TACG", "TACG"]);
        let (hits, _) = search_all(&db, "TACG", 1);
        assert_eq!(hits.len(), 3);
        let mut seqs: Vec<SeqId> = hits.iter().map(|h| h.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 3);
        assert!(hits.iter().all(|h| h.score == 4));
    }

    #[test]
    fn columns_expanded_less_than_sw() {
        // OASIS's filtering: far fewer columns than S-W's (= total residues)
        // on a database with shared structure.
        let seqs: Vec<String> = (0..50)
            .map(|i| {
                let tail = match i % 4 {
                    0 => "ACGT",
                    1 => "GGCC",
                    2 => "TTAA",
                    _ => "CAGT",
                };
                format!("{}{}", "ACGTACGTACGT", tail)
            })
            .collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let db = dna_db(&refs);
        let (_, stats) = search_all(&db, "ACGTACG", 5);
        assert!(
            stats.columns_expanded < db.total_residues(),
            "OASIS {} vs S-W {}",
            stats.columns_expanded,
            db.total_residues()
        );
    }

    #[test]
    fn from_evalue_uses_equation_3() {
        let kp = KarlinParams::estimate(
            &SubstitutionMatrix::unit(AlphabetKind::Dna),
            &oasis_align::background_dna(),
        )
        .unwrap();
        let relaxed = OasisParams::from_evalue(&kp, 16, 1_000_000, 20_000.0);
        let strict = OasisParams::from_evalue(&kp, 16, 1_000_000, 1.0);
        assert!(strict.min_score > relaxed.min_score);
    }

    #[test]
    fn works_with_protein_scoring() {
        let mut b = DatabaseBuilder::new(Alphabet::protein());
        b.push_str("p0", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")
            .unwrap();
        b.push_str("p1", "GGGGGAKQRQISGGGGG").unwrap();
        b.push_str("p2", "WWWWWWWW").unwrap();
        let db = b.finish();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::blosum62_protein();
        let q = Alphabet::protein().encode_str("AKQRQISF").unwrap();
        let params = OasisParams::with_min_score(20);
        let (hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        // Both homologous sequences found, in score order.
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        let mut scanner = SwScanner::new();
        let sw = scanner.scan(&db, &q, &scoring, 20);
        assert_eq!(hits.len(), sw.len());
        assert_eq!(hits[0].score, sw[0].hit.score);
    }

    #[test]
    fn gap_model_affects_scores_identically_to_sw() {
        let db = dna_db(&["TTAAGGTT", "TTACGGTT", "GGGGG"]);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 2, -3),
            GapModel::linear(-1),
        );
        let q = Alphabet::dna().encode_str("TTAGGTT").unwrap();
        let tree = SuffixTree::build(&db);
        let params = OasisParams::with_min_score(3);
        let (hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &q, &scoring, 3);
        let mut got: Vec<(SeqId, Score)> = hits.iter().map(|h| (h.seq, h.score)).collect();
        got.sort_unstable();
        let mut want: Vec<(SeqId, Score)> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "minScore must be positive")]
    fn zero_min_score_rejected() {
        OasisParams::with_min_score(0);
    }

    #[test]
    fn all_occurrences_reports_every_position() {
        // ACGACGACG contains ACG at 0, 3, 6; best-per-sequence reports one
        // hit, all-occurrences reports all three, still score-ordered.
        let db = dna_db(&["ACGACGACG", "TTTT"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("ACG").unwrap();
        let best = OasisParams::with_min_score(3);
        let all = OasisParams::with_min_score(3).all_occurrences();
        let (best_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &best).run();
        let (all_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &all).run();
        assert_eq!(best_hits.len(), 1);
        assert_eq!(all_hits.len(), 3);
        let mut starts: Vec<u32> = all_hits.iter().map(|h| h.t_start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 3, 6]);
        assert!(all_hits.iter().all(|h| h.score == 3));
        assert!(all_hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn all_occurrences_is_superset_of_best() {
        let db = dna_db(&["AGTACGCCTAG", "TACCGTACG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let best = OasisParams::with_min_score(2);
        let all = OasisParams::with_min_score(2).all_occurrences();
        let (best_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &best).run();
        let (all_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &all).run();
        // Every best hit's (seq, score) appears among the occurrences.
        for b in &best_hits {
            assert!(
                all_hits
                    .iter()
                    .any(|a| a.seq == b.seq && a.score == b.score),
                "missing {b:?}"
            );
        }
        assert!(all_hits.len() >= best_hits.len());
    }

    #[test]
    fn early_stop_off_yields_same_results() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let with_stop = OasisParams::with_min_score(1);
        let without_stop = OasisParams {
            early_stop_all_sequences: false,
            ..with_stop
        };
        let (a, a_stats) = OasisSearch::new(&tree, &db, &q, &scoring, &with_stop).run();
        let (b, b_stats) = OasisSearch::new(&tree, &db, &q, &scoring, &without_stop).run();
        assert_eq!(a, b);
        // Without the early stop the search drains the whole queue, which
        // can only do at least as much work.
        assert!(b_stats.nodes_expanded >= a_stats.nodes_expanded);
    }

    #[test]
    fn score_bound_is_monotone_and_sound() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG", "CCCC"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let mut search = OasisSearch::new(&tree, &db, &q, &scoring, &params);
        let mut prev_bound = search.score_bound().expect("root enqueued");
        while let Some(hit) = search.next() {
            // Every emitted hit respects the bound that preceded it.
            assert!(hit.score <= prev_bound, "{} > {}", hit.score, prev_bound);
            match search.score_bound() {
                Some(b) => {
                    assert!(b <= prev_bound, "bound must not increase");
                    prev_bound = b;
                }
                None => break,
            }
        }
    }

    #[test]
    fn stats_counters_are_coherent() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let (hits, stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        assert_eq!(stats.hits_emitted as usize, hits.len());
        assert!(stats.nodes_enqueued >= stats.nodes_expanded.saturating_sub(1));
        assert!(stats.max_queue >= 1);
        assert!(stats.columns_expanded >= stats.nodes_expanded);
    }

    #[test]
    #[should_panic(expected = "does not index this database")]
    fn mismatched_tree_rejected() {
        let db1 = dna_db(&["ACGT"]);
        let db2 = dna_db(&["ACGTACGT"]);
        let tree = SuffixTree::build(&db1);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let q = Alphabet::dna().encode_str("AC").unwrap();
        let _ = OasisSearch::new(&tree, &db2, &q, &scoring, &params);
    }
}
