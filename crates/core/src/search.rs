//! Search configuration, results, and the iterator facade over the
//! resumable [`SearchDriver`].
//!
//! [`OasisSearch`] is an [`Iterator`]: each `next()` call advances the A*
//! search just far enough to produce the next hit, so "the scientist may
//! want to abort the query after seeing the top few results" costs exactly
//! as much search as those results required. Hits arrive in non-increasing
//! score order — the paper's *online* property.
//!
//! Reporting duplicates the paper's S-W-compatible mode: "the single
//! strongest alignment for each sequence in the database". A sequence is
//! reported the first time any accepted subtree covers it; by the queue
//! ordering that first report carries the sequence's maximal score.
//!
//! The search machinery itself lives in [`crate::driver`] (the step-based
//! state machine) and [`crate::frontier`] (the best-first priority queue).

use oasis_align::{sw_align, Alignment, KarlinParams, Score, Scoring};
use oasis_bioseq::{SeqId, SequenceDatabase};
use oasis_suffix::SuffixTreeAccess;

use crate::driver::SearchDriver;

/// What an accepted node reports (§3: "several approaches can be adopted
/// to the reporting of alignments").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// "Duplicate the behavior of S-W, reporting only the single strongest
    /// alignment for each sequence in the database" — the paper's mode and
    /// the default.
    BestPerSequence,
    /// Report every occurrence under every accepted node: one hit per leaf,
    /// still online in non-increasing score order. Use to enumerate *all*
    /// places a query aligns, not just each sequence's best.
    AllOccurrences,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OasisParams {
    /// Minimum alignment score to report (the paper's `minScore`; ≥ 1).
    pub min_score: Score,
    /// Stop as soon as every database sequence has been reported (§3.3:
    /// the search continues "to identify maximal alignments for all
    /// sequences, or until the queue is empty"). Only meaningful in
    /// [`ReportMode::BestPerSequence`].
    pub early_stop_all_sequences: bool,
    /// Reporting behaviour for accepted nodes.
    pub report: ReportMode,
}

impl OasisParams {
    /// Params with an explicit score threshold.
    pub fn with_min_score(min_score: Score) -> Self {
        assert!(min_score >= 1, "minScore must be positive");
        OasisParams {
            min_score,
            early_stop_all_sequences: true,
            report: ReportMode::BestPerSequence,
        }
    }

    /// Switch to [`ReportMode::AllOccurrences`].
    pub fn all_occurrences(mut self) -> Self {
        self.report = ReportMode::AllOccurrences;
        self.early_stop_all_sequences = false;
        self
    }

    /// Params from an E-value threshold via the paper's Equation 3.
    pub fn from_evalue(
        stats: &KarlinParams,
        query_len: u64,
        db_residues: u64,
        evalue: f64,
    ) -> Self {
        Self::with_min_score(stats.min_score_for_evalue(query_len, db_residues, evalue))
    }
}

/// One reported alignment: the strongest local alignment of the query within
/// one database sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// The database sequence.
    pub seq: SeqId,
    /// The alignment score (the sequence's maximum).
    pub score: Score,
    /// Global text position where the matched target window starts (the
    /// suffix-tree path start).
    pub t_start: u32,
    /// Length of the matched target window (path depth at the best score).
    pub t_len: u32,
    /// One past the last aligned query position.
    pub q_end: u32,
}

impl Hit {
    /// E-value of this hit under `stats` (Equation 2).
    pub fn evalue(&self, stats: &KarlinParams, query_len: u64, db_residues: u64) -> f64 {
        stats.evalue(query_len, db_residues, self.score)
    }

    /// Recover the operation-level alignment by a bounded Smith-Waterman
    /// re-run over the hit's target window. The window is tiny (at most
    /// `t_len` symbols), so this costs O(query × t_len).
    pub fn alignment(&self, db: &SequenceDatabase, query: &[u8], scoring: &Scoring) -> Alignment {
        let window = &db.text()[self.t_start as usize..(self.t_start + self.t_len) as usize];
        let mut aln = sw_align(query, window, scoring)
            .expect("a reported hit implies a positive-scoring alignment");
        debug_assert_eq!(aln.score, self.score, "window re-alignment must agree");
        aln.t_start += self.t_start as usize;
        aln.t_end += self.t_start as usize;
        aln
    }
}

/// Instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DP columns computed — the filtering metric of the paper's Figure 4
    /// (S-W computes one column per database residue).
    pub columns_expanded: u64,
    /// Viable nodes whose children were expanded.
    pub nodes_expanded: u64,
    /// Nodes pushed onto the priority queue.
    pub nodes_enqueued: u64,
    /// Child nodes expanded and immediately discarded as unviable — the
    /// paper's pruning at work (cells the search computed but cut).
    pub nodes_pruned: u64,
    /// Largest queue size observed.
    pub max_queue: usize,
    /// Hits emitted.
    pub hits_emitted: u64,
}

/// The OASIS search: an iterator of [`Hit`]s in non-increasing score order.
///
/// A thin facade over [`SearchDriver`]; use the driver directly when you
/// need to resume, interleave, or schedule searches (as `oasis-engine`
/// does for concurrent batches).
pub struct OasisSearch<'a, T: SuffixTreeAccess + ?Sized> {
    driver: SearchDriver<'a, T>,
}

impl<'a, T: SuffixTreeAccess + ?Sized> OasisSearch<'a, T> {
    /// Set up a search of `query` against `db` through its suffix tree.
    ///
    /// The tree must index exactly `db` (same text); `query` must be encoded
    /// with `db`'s alphabet.
    pub fn new(
        tree: &'a T,
        db: &'a SequenceDatabase,
        query: &[u8],
        scoring: &'a Scoring,
        params: &OasisParams,
    ) -> Self {
        OasisSearch {
            driver: SearchDriver::new(tree, db, query, scoring, params),
        }
    }

    /// Counters so far (final after the iterator is exhausted).
    pub fn stats(&self) -> SearchStats {
        self.driver.stats()
    }

    /// An upper bound on the score of any hit this search can still emit,
    /// or `None` when the search is exhausted. This is what makes the
    /// E-value-ordered reporting of [`crate::evalue`] possible: a held-back
    /// hit may be released once no future hit can undercut its E-value.
    pub fn score_bound(&self) -> Option<Score> {
        self.driver.score_bound()
    }

    /// Drain the search, returning all hits and the final statistics.
    pub fn run(mut self) -> (Vec<Hit>, SearchStats) {
        let mut hits = Vec::new();
        let stats = self.driver.drain_into(&mut hits);
        (hits, stats)
    }

    /// The underlying resumable driver.
    pub fn driver(&self) -> &SearchDriver<'a, T> {
        &self.driver
    }

    /// Consume the facade, returning the underlying driver.
    pub fn into_driver(self) -> SearchDriver<'a, T> {
        self.driver
    }
}

impl<T: SuffixTreeAccess + ?Sized> Iterator for OasisSearch<'_, T> {
    type Item = Hit;

    fn next(&mut self) -> Option<Hit> {
        self.driver.next_hit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_bioseq::{Alphabet, DatabaseBuilder};
    use oasis_suffix::SuffixTree;

    fn dna_db(seqs: &[&str]) -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn facade_and_driver_agree() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let (hits, stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        let mut driver = SearchDriver::new(&tree, &db, &q, &scoring, &params);
        let mut driven = Vec::new();
        let driver_stats = driver.drain_into(&mut driven);
        assert_eq!(hits, driven);
        assert_eq!(stats, driver_stats);
    }

    #[test]
    fn into_driver_resumes_where_iteration_stopped() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let all: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();

        let mut search = OasisSearch::new(&tree, &db, &q, &scoring, &params);
        let first = search.next().expect("has hits");
        let mut rest = Vec::new();
        search.into_driver().drain_into(&mut rest);
        let mut resumed = vec![first];
        resumed.extend(rest);
        assert_eq!(resumed, all);
    }

    #[test]
    #[should_panic(expected = "minScore must be positive")]
    fn zero_min_score_rejected() {
        OasisParams::with_min_score(0);
    }
}
