//! Algorithm 3: the `Expand` function — "the core of the OASIS algorithm".
//!
//! Expanding a suffix-tree arc fills the corresponding columns of the
//! (never-resetting) Smith-Waterman matrix, seeded with the parent node's
//! final column. After each column three pruning rules fire (§3.2):
//!
//! 1. **Non-positive alignment scores** (`M[i][j] ≤ 0`) — such alignments
//!    are covered by other suffix-tree paths, because every subsequence of
//!    the target is the prefix of some path.
//! 2. **Existing alignment is as good** (`M[i][j] + h_i ≤ Gmax(path)`) —
//!    the optimistic completion cannot beat the strongest alignment already
//!    found along this path.
//! 3. **Threshold failure** (`M[i][j] + h_i < minScore`) — no extension can
//!    reach the score threshold.
//!
//! Expansion also stops early: if the column's upper bound `f` drops to
//! `Gmax` the node is *accepted* (or *unviable* if `Gmax < minScore`); if
//! `f` falls below `minScore` the node is *unviable*. A terminator symbol
//! ends a leaf arc the same way ("we simply set f and g to the maximum
//! value seen along the path", §3.3).

use oasis_align::{Score, Scoring, NEG_INF};
use oasis_bioseq::TERMINATOR;
use oasis_suffix::{NodeHandle, SuffixTreeAccess};

use crate::node::{SearchNode, Status};

/// Reusable buffers for [`expand`], so the hot loop performs no allocation
/// except for the `C` vector of nodes that stay viable.
#[derive(Debug, Default)]
pub struct ExpandScratch {
    prev: Vec<Score>,
    cur: Vec<Score>,
    chunk: Vec<u8>,
}

/// How many arc symbols are pulled from the tree per `arc_fill` call.
/// Chunking keeps disk-backed trees efficient without materializing whole
/// leaf arcs (expansion usually terminates after a handful of columns).
const ARC_CHUNK: usize = 64;

/// Which of §3.2's pruning rules are active. All three are on in normal
/// operation; the ablation benches disable them individually to quantify
/// each rule's contribution. Disabling rules never changes the reported
/// result set — only the amount of work (and, for `threshold`, whether
/// hopeless subtrees are abandoned at the node level too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneRules {
    /// Rule 1: prune non-positive alignment scores.
    pub non_positive: bool,
    /// Rule 2: prune cells whose optimistic completion cannot beat
    /// `Gmax(path)`.
    pub no_improvement: bool,
    /// Rule 3: prune cells (and abandon nodes) that cannot reach `minScore`.
    pub threshold: bool,
}

impl Default for PruneRules {
    fn default() -> Self {
        PruneRules {
            non_positive: true,
            no_improvement: true,
            threshold: true,
        }
    }
}

/// Expand `child` (an arc of the suffix tree) from `parent`, producing the
/// child's search node. `parent` must be a viable node whose `c` vector is
/// populated; `h` is the heuristic vector; `seq` is the new node's
/// deterministic tie-breaking sequence number. Each computed DP column
/// increments `columns`, the filtering metric of the paper's Figure 4.
// The arguments are the paper's Algorithm 3 inputs, kept positional so the
// code reads against the pseudocode.
#[allow(clippy::too_many_arguments)]
pub fn expand<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    scoring: &Scoring,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut ExpandScratch,
    columns: &mut u64,
) -> SearchNode {
    expand_with_rules(
        tree,
        parent,
        child,
        query,
        scoring,
        h,
        min_score,
        seq,
        scratch,
        columns,
        PruneRules::default(),
    )
}

/// [`expand`] with explicit pruning-rule control (ablation entry point).
// Same signature as `expand` plus the rule toggles; see the note there.
#[allow(clippy::too_many_arguments)]
pub fn expand_with_rules<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    scoring: &Scoring,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut ExpandScratch,
    columns: &mut u64,
    rules: PruneRules,
) -> SearchNode {
    debug_assert_eq!(parent.status, Status::Viable);
    debug_assert_eq!(parent.c.len(), query.len() + 1);
    let n = query.len();
    let gap = scoring.gap.linear_per_symbol();
    let parent_depth = parent.depth;
    let arc_total = tree.arc_len(parent_depth, child);

    let mut gmax = parent.gmax;
    let mut gmax_depth = parent.gmax_depth;
    let mut gmax_qend = parent.gmax_qend;

    scratch.prev.clear();
    scratch.prev.extend_from_slice(&parent.c);
    scratch.cur.resize(n + 1, NEG_INF);
    scratch.chunk.resize(ARC_CHUNK, 0);

    let mut depth = parent_depth;
    let mut consumed = 0u32;
    let mut f_col = NEG_INF;
    let mut g_col = NEG_INF;

    let terminal = |gmax: Score, gmax_depth: u32, gmax_qend: u32, depth: u32| SearchNode {
        handle: child,
        depth,
        f: gmax,
        g: gmax,
        gmax,
        gmax_depth,
        gmax_qend,
        status: if gmax >= min_score {
            Status::Accepted
        } else {
            Status::Unviable
        },
        c: Box::new([]),
        e: Box::new([]),
        seq,
    };

    while consumed < arc_total {
        let got = tree.arc_fill(parent_depth, child, consumed, &mut scratch.chunk);
        debug_assert!(got > 0, "arc_fill must make progress");
        for k in 0..got {
            let t = scratch.chunk[k];
            if t == TERMINATOR {
                // End of a leaf arc: "no further expansion is possible".
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            *columns += 1;
            depth += 1;
            let prev = &scratch.prev;
            let cur = &mut scratch.cur;

            let pruned = |v: Score, hi: Score, gmax: Score| -> bool {
                (rules.non_positive && v <= 0)
                    || (rules.no_improvement && v + hi <= gmax)
                    || (rules.threshold && v + hi < min_score)
            };

            // Row 0: the empty query prefix can only extend by a deletion;
            // resets to zero are "not permitted outside of the seed entry".
            let v0 = prev[0] + gap;
            cur[0] = if pruned(v0, h[0], gmax) { NEG_INF } else { v0 };
            f_col = if cur[0] == NEG_INF {
                NEG_INF
            } else {
                cur[0] + h[0]
            };
            g_col = cur[0];

            for i in 1..=n {
                let replace = prev[i - 1] + scoring.sub(query[i - 1], t);
                let insert = cur[i - 1] + gap; // skip a query symbol
                let delete = prev[i] + gap; // skip a target symbol
                let best = replace.max(insert).max(delete);
                if pruned(best, h[i], gmax) {
                    cur[i] = NEG_INF;
                } else {
                    cur[i] = best;
                    if best > gmax {
                        gmax = best;
                        gmax_depth = depth;
                        gmax_qend = i as u32;
                    }
                    f_col = f_col.max(best + h[i]);
                    g_col = g_col.max(best);
                }
            }

            // Early exits (§3.2): no improvement possible along this path…
            if f_col <= gmax {
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            // …or the threshold is out of reach.
            if rules.threshold && f_col < min_score {
                return SearchNode {
                    handle: child,
                    depth,
                    f: f_col,
                    g: g_col,
                    gmax,
                    gmax_depth,
                    gmax_qend,
                    status: Status::Unviable,
                    c: Box::new([]),
                    e: Box::new([]),
                    seq,
                };
            }
            std::mem::swap(&mut scratch.prev, &mut scratch.cur);
        }
        consumed += got as u32;
    }

    // Whole arc consumed without a terminator: an internal node, still
    // promising — keep its final column for the children.
    debug_assert!(!child.is_leaf(), "leaf arcs end with a terminator");
    SearchNode {
        handle: child,
        depth,
        f: f_col,
        g: g_col,
        gmax,
        gmax_depth,
        gmax_qend,
        status: Status::Viable,
        c: scratch.prev.clone().into_boxed_slice(),
        e: Box::new([]),
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::root_node;
    use crate::heuristic::heuristic_vector;
    use oasis_align::Scoring;
    use oasis_bioseq::{Alphabet, DatabaseBuilder, SequenceDatabase};
    use oasis_suffix::SuffixTree;

    fn figure2_db() -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("s0", "AGTACGCCTAG").unwrap();
        b.finish()
    }

    /// Find the internal node whose path label is `label`.
    fn node_by_label(tree: &SuffixTree, label: &str) -> NodeHandle {
        let alpha = Alphabet::dna();
        (0..SuffixTreeAccess::num_internal(tree))
            .map(NodeHandle::internal)
            .find(|&h| alpha.decode_all(&tree.path_label(h)) == label)
            .unwrap_or_else(|| panic!("no internal node with path {label}"))
    }

    /// Drive one expansion of the §3.3 walkthrough: query TACG, unit
    /// matrix, minScore 1.
    fn walkthrough_expand(label: &str) -> SearchNode {
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).expect("root viable");
        let child = node_by_label(&tree, label);
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        expand(
            &tree,
            &root,
            child,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        )
    }

    #[test]
    fn root_node_matches_paper() {
        // §3.3: the root entry has C = [0,0,0,0,−∞], f = 4, g = 0.
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        assert_eq!(root.f, 4);
        assert_eq!(root.g, 0);
        assert_eq!(root.gmax, 0);
        assert_eq!(&root.c[..4], &[0, 0, 0, 0]);
        assert_eq!(root.c[4], NEG_INF); // h_4 = 0 < minScore prunes it
        assert_eq!(root.status, Status::Viable);
    }

    #[test]
    fn expand_node_1n_path_a() {
        // Paper: expanding 1N (path "A") gives a VIABLE node with f=3, and
        // the only surviving C entry is c_2 = 1.
        let node = walkthrough_expand("A");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 3);
        assert_eq!(node.g, 1);
        assert_eq!(node.gmax, 1);
        assert_eq!(node.c[2], 1);
        for i in [0usize, 1, 3, 4] {
            assert_eq!(node.c[i], NEG_INF, "c[{i}] should be pruned");
        }
    }

    #[test]
    fn expand_node_2n_path_c() {
        // Paper: 2N expansion results in f = 2 and g = 1.
        let node = walkthrough_expand("C");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 2);
        assert_eq!(node.g, 1);
    }

    #[test]
    fn expand_node_3n_path_g_accepted() {
        // Paper: "The expansion of node 3N results in f and g values of 1,
        // so this node is tagged as ACCEPTED."
        let node = walkthrough_expand("G");
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 1);
        assert_eq!(node.g, 1);
        assert_eq!(node.gmax, 1);
    }

    #[test]
    fn expand_node_4n_path_ta() {
        // Paper: 4N (path "TA") expands two columns to a VIABLE node with
        // f = 4; the strongest alignment so far is TA/TA with score 2.
        let node = walkthrough_expand("TA");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 4);
        assert_eq!(node.g, 2);
        assert_eq!(node.gmax, 2);
        assert_eq!(node.gmax_depth, 2);
        assert_eq!(node.gmax_qend, 2);
        assert_eq!(node.c[2], 2);
    }

    #[test]
    fn expand_leaf_2l_accepts_with_score_4() {
        // Paper: expanding 2L from 4N reaches an accept state in the second
        // column with f = g = 4.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let ta = node_by_label(&tree, "TA");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta_node = expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        let leaf2 = NodeHandle::leaf(2);
        let node = expand(
            &tree,
            &ta_node,
            leaf2,
            &query,
            &scoring,
            &h,
            1,
            2,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 4);
        assert_eq!(node.g, 4);
        assert_eq!(node.gmax_depth, 4); // TACG: whole 4-symbol path
        assert_eq!(node.gmax_qend, 4);
    }

    #[test]
    fn expand_leaf_8l_accepts_with_score_2() {
        // Paper: 8L's expansion results in f and g values of 2.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let ta = node_by_label(&tree, "TA");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta_node = expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        let leaf8 = NodeHandle::leaf(8);
        let node = expand(
            &tree,
            &ta_node,
            leaf8,
            &query,
            &scoring,
            &h,
            1,
            2,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 2);
        assert_eq!(node.g, 2);
        assert_eq!(node.gmax, 2);
    }

    #[test]
    fn columns_counter_counts_dp_columns() {
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta = node_by_label(&tree, "TA");
        expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(columns, 2); // "TA" = two columns
    }

    #[test]
    fn disabled_rules_change_work_not_results() {
        // Rules off keeps more cells alive: the node is still viable with
        // the same f/g/gmax, only the C vector retains extra entries.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let a = node_by_label(&tree, "A");
        let mut scratch = ExpandScratch::default();
        let mut cols = 0;
        let strict = expand(
            &tree,
            &root,
            a,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut cols,
        );
        let rules_off = PruneRules {
            non_positive: false,
            no_improvement: false,
            threshold: false,
        };
        let loose = expand_with_rules(
            &tree,
            &root,
            a,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut cols,
            rules_off,
        );
        assert_eq!(strict.f, loose.f);
        assert_eq!(strict.g, loose.g);
        assert_eq!(strict.gmax, loose.gmax);
        assert_eq!(strict.status, loose.status);
        // The loose expansion keeps at least as many live C entries.
        let live = |n: &SearchNode| n.c.iter().filter(|&&v| v > NEG_INF / 2).count();
        assert!(live(&loose) >= live(&strict));
    }

    #[test]
    fn unviable_when_threshold_unreachable() {
        // minScore 5 > best possible along "G" (f_col = 1): unviable.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        // Root with minScore 4 still viable (f = 4).
        let root = root_node(&query, &h, 4).unwrap();
        let g = node_by_label(&tree, "G");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let node = expand(
            &tree,
            &root,
            g,
            &query,
            &scoring,
            &h,
            4,
            1,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Unviable);
    }
}
