//! Algorithm 3: the `Expand` function — "the core of the OASIS algorithm".
//!
//! Expanding a suffix-tree arc fills the corresponding columns of the
//! (never-resetting) Smith-Waterman matrix, seeded with the parent node's
//! final column. After each column three pruning rules fire (§3.2):
//!
//! 1. **Non-positive alignment scores** (`M[i][j] ≤ 0`) — such alignments
//!    are covered by other suffix-tree paths, because every subsequence of
//!    the target is the prefix of some path.
//! 2. **Existing alignment is as good** (`M[i][j] + h_i ≤ Gmax(path)`) —
//!    the optimistic completion cannot beat the strongest alignment already
//!    found along this path.
//! 3. **Threshold failure** (`M[i][j] + h_i < minScore`) — no extension can
//!    reach the score threshold.
//!
//! Expansion also stops early: if the column's upper bound `f` drops to
//! `Gmax` the node is *accepted* (or *unviable* if `Gmax < minScore`); if
//! `f` falls below `minScore` the node is *unviable*. A terminator symbol
//! ends a leaf arc the same way ("we simply set f and g to the maximum
//! value seen along the path", §3.3).
//!
//! ## Kernel layout
//!
//! The hot column loop is split into two passes over a cache-friendly
//! layout. A **query profile** (`profile[t · n + i] = S(q_{i+1}, t)`,
//! built once per query and cached in [`ExpandScratch`]) turns the
//! substitution lookup into a contiguous streamed row. Pass 1 computes the
//! carry-free part of the recurrence — `max(replace, delete)` — which has
//! no loop-carried dependency and compiles to straight-line vector code;
//! pass 2 folds in the sequential insertion chain and applies the pruning
//! rules, `Gmax`, and the column bounds in the exact left-to-right order
//! of Algorithm 3. A per-column **live mask** (one bit per surviving `C`
//! cell) lets whole 64-cell blocks whose inputs are all pruned be skipped
//! outright — valid precisely when rule 1 is active, because rule 1 pins
//! every dead cell to exactly `NEG_INF`. The scalar transcription is kept
//! as [`expand_reference`]; a property test pins the fast kernel to it
//! byte for byte.

use oasis_align::{Score, Scoring, NEG_INF};
use oasis_bioseq::TERMINATOR;
use oasis_suffix::{NodeHandle, SuffixTreeAccess};

use crate::node::{SearchNode, Status};

/// Reusable buffers for [`expand`], so the hot loop performs no allocation
/// except for the `C` vector of nodes that stay viable. Also caches the
/// query substitution profile across expansions of the same query.
#[derive(Debug, Default)]
pub struct ExpandScratch {
    prev: Vec<Score>,
    cur: Vec<Score>,
    chunk: Vec<u8>,
    /// Pass-1 output: `max(replace, delete)` per cell, no carried state.
    tmp: Vec<Score>,
    /// `profile[t * n + i] = scoring.sub(query[i], t)` for every residue
    /// code `t` of the alphabet — the matrix transposed into rows indexed
    /// by *target* symbol, so one arc symbol streams one contiguous row.
    profile: Vec<Score>,
    /// The (query, scoring) the profile was built for.
    profile_query: Vec<u8>,
    profile_scoring: Option<Scoring>,
    /// Bit `i` set ⇔ `prev[i] != NEG_INF` (only maintained when rule 1 is
    /// active; see the module doc).
    live_prev: Vec<u64>,
    live_cur: Vec<u64>,
}

impl ExpandScratch {
    /// (Re)build the cached query profile if the query or scoring changed.
    fn ensure_profile(&mut self, query: &[u8], scoring: &Scoring) {
        let n = query.len();
        let nsyms = scoring.matrix.alphabet_len();
        if self.profile_query == query
            && self.profile_scoring.as_ref() == Some(scoring)
            && self.profile.len() == nsyms * n
        {
            return;
        }
        self.profile.clear();
        self.profile.resize(nsyms * n, 0);
        for t in 0..nsyms {
            let row = &mut self.profile[t * n..(t + 1) * n];
            for (cell, &q) in row.iter_mut().zip(query) {
                *cell = scoring.sub(q, t as u8);
            }
        }
        self.profile_query.clear();
        self.profile_query.extend_from_slice(query);
        self.profile_scoring = Some(scoring.clone());
    }
}

/// True if any bit in `mask[lo..=hi]` (bit indices) is set.
#[inline]
fn any_live(mask: &[u64], lo: usize, hi: usize) -> bool {
    let (wl, wh) = (lo / 64, hi / 64);
    let lo_bits = !0u64 << (lo % 64);
    let hi_bits = !0u64 >> (63 - hi % 64);
    if wl == wh {
        mask[wl] & lo_bits & hi_bits != 0
    } else {
        mask[wl] & lo_bits != 0
            || mask[wh] & hi_bits != 0
            || mask[wl + 1..wh].iter().any(|&w| w != 0)
    }
}

#[inline]
fn set_live(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1 << (i % 64);
}

/// How many arc symbols are pulled from the tree per `arc_fill` call.
/// Chunking keeps disk-backed trees efficient without materializing whole
/// leaf arcs (expansion usually terminates after a handful of columns).
const ARC_CHUNK: usize = 64;

/// Which of §3.2's pruning rules are active. All three are on in normal
/// operation; the ablation benches disable them individually to quantify
/// each rule's contribution. Disabling rules never changes the reported
/// result set — only the amount of work (and, for `threshold`, whether
/// hopeless subtrees are abandoned at the node level too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneRules {
    /// Rule 1: prune non-positive alignment scores.
    pub non_positive: bool,
    /// Rule 2: prune cells whose optimistic completion cannot beat
    /// `Gmax(path)`.
    pub no_improvement: bool,
    /// Rule 3: prune cells (and abandon nodes) that cannot reach `minScore`.
    pub threshold: bool,
}

impl Default for PruneRules {
    fn default() -> Self {
        PruneRules {
            non_positive: true,
            no_improvement: true,
            threshold: true,
        }
    }
}

/// Expand `child` (an arc of the suffix tree) from `parent`, producing the
/// child's search node. `parent` must be a viable node whose `c` vector is
/// populated; `h` is the heuristic vector; `seq` is the new node's
/// deterministic tie-breaking sequence number. Each computed DP column
/// increments `columns`, the filtering metric of the paper's Figure 4.
// The arguments are the paper's Algorithm 3 inputs, kept positional so the
// code reads against the pseudocode.
#[allow(clippy::too_many_arguments)]
pub fn expand<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    scoring: &Scoring,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut ExpandScratch,
    columns: &mut u64,
) -> SearchNode {
    expand_with_rules(
        tree,
        parent,
        child,
        query,
        scoring,
        h,
        min_score,
        seq,
        scratch,
        columns,
        PruneRules::default(),
    )
}

/// Queries shorter than this run the fused scalar column loop instead of
/// the two-pass layout: below it a column fits comfortably in registers
/// and L1, so profile rows and live-mask upkeep cost more than the fused
/// dependency chain they replace. At and above it the carry-free first
/// pass auto-vectorizes and whole 64-cell blocks of dead cells are
/// skipped, which is where the layout pays for itself.
const FUSED_SCALAR_CUTOFF: usize = 48;

/// [`expand`] with explicit pruning-rule control (ablation entry point).
///
/// This is the production kernel: query-profile rows, a vectorizable
/// carry-free first pass, and live-mask block skipping (see the module
/// doc) for queries of at least `FUSED_SCALAR_CUTOFF` (48) symbols, and the
/// fused scalar loop below that. It is byte-identical to
/// [`expand_reference`] on both sides of the cutoff — a property test
/// straddling the boundary holds the two together.
// Same signature as `expand` plus the rule toggles; see the note there.
#[allow(clippy::too_many_arguments)]
pub fn expand_with_rules<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    scoring: &Scoring,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut ExpandScratch,
    columns: &mut u64,
    rules: PruneRules,
) -> SearchNode {
    if query.len() < FUSED_SCALAR_CUTOFF {
        return expand_reference(
            tree, parent, child, query, scoring, h, min_score, seq, scratch, columns, rules,
        );
    }
    debug_assert_eq!(parent.status, Status::Viable);
    debug_assert_eq!(parent.c.len(), query.len() + 1);
    let n = query.len();
    let gap = scoring.gap.linear_per_symbol();
    let parent_depth = parent.depth;
    let arc_total = tree.arc_len(parent_depth, child);

    let mut gmax = parent.gmax;
    let mut gmax_depth = parent.gmax_depth;
    let mut gmax_qend = parent.gmax_qend;

    scratch.ensure_profile(query, scoring);
    scratch.prev.clear();
    scratch.prev.extend_from_slice(&parent.c);
    scratch.cur.resize(n + 1, NEG_INF);
    scratch.tmp.resize(n + 1, NEG_INF);
    scratch.chunk.resize(ARC_CHUNK, 0);

    // Rule 1 pins every pruned cell to exactly NEG_INF, which is what
    // makes a zero live mask a proof that a whole block stays dead.
    let block_skip = rules.non_positive;
    let words = (n + 1).div_ceil(64);
    scratch.live_prev.clear();
    scratch.live_prev.resize(words, 0);
    scratch.live_cur.clear();
    scratch.live_cur.resize(words, 0);
    if block_skip {
        for (i, &v) in scratch.prev.iter().enumerate() {
            if v != NEG_INF {
                set_live(&mut scratch.live_prev, i);
            }
        }
    }

    let mut depth = parent_depth;
    let mut consumed = 0u32;
    let mut f_col = NEG_INF;
    let mut g_col = NEG_INF;

    let terminal = |gmax: Score, gmax_depth: u32, gmax_qend: u32, depth: u32| SearchNode {
        handle: child,
        depth,
        f: gmax,
        g: gmax,
        gmax,
        gmax_depth,
        gmax_qend,
        status: if gmax >= min_score {
            Status::Accepted
        } else {
            Status::Unviable
        },
        c: Box::new([]),
        e: Box::new([]),
        seq,
    };

    while consumed < arc_total {
        let got = tree.arc_fill(parent_depth, child, consumed, &mut scratch.chunk);
        debug_assert!(got > 0, "arc_fill must make progress");
        for k in 0..got {
            let t = scratch.chunk[k];
            if t == TERMINATOR {
                // End of a leaf arc: "no further expansion is possible".
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            *columns += 1;
            depth += 1;
            let ExpandScratch {
                prev,
                cur,
                tmp,
                profile,
                live_prev,
                live_cur,
                ..
            } = &mut *scratch;
            let row = &profile[t as usize * n..t as usize * n + n];

            let pruned = |v: Score, hi: Score, gmax: Score| -> bool {
                (rules.non_positive && v <= 0)
                    || (rules.no_improvement && v + hi <= gmax)
                    || (rules.threshold && v + hi < min_score)
            };

            // Row 0: the empty query prefix can only extend by a deletion;
            // resets to zero are "not permitted outside of the seed entry".
            let v0 = prev[0] + gap;
            cur[0] = if pruned(v0, h[0], gmax) { NEG_INF } else { v0 };
            f_col = if cur[0] == NEG_INF {
                NEG_INF
            } else {
                cur[0] + h[0]
            };
            g_col = cur[0];
            if block_skip {
                live_cur.fill(0);
                if cur[0] != NEG_INF {
                    set_live(live_cur, 0);
                }
            }

            // Cells 1..=n, in 64-cell blocks. A block whose diagonal,
            // vertical, and carry inputs are all dead cannot produce a
            // positive score, so rule 1 would prune every cell in it:
            // write the NEG_INFs and move on without computing anything.
            let mut lo = 1usize;
            while lo <= n {
                let hi_cell = (lo + 63).min(n);
                if block_skip && cur[lo - 1] == NEG_INF && !any_live(live_prev, lo - 1, hi_cell) {
                    cur[lo..=hi_cell].fill(NEG_INF);
                    lo = hi_cell + 1;
                    continue;
                }
                // Pass 1: replace/delete have no carried state — this
                // loop is pure elementwise max over contiguous rows.
                {
                    let dst = &mut tmp[lo..=hi_cell];
                    let diag = &prev[lo - 1..hi_cell];
                    let up = &prev[lo..=hi_cell];
                    let sub = &row[lo - 1..hi_cell];
                    for (((d, &pd), &pu), &s) in dst.iter_mut().zip(diag).zip(up).zip(sub) {
                        *d = (pd + s).max(pu + gap);
                    }
                }
                // Pass 2: fold in the sequential insertion chain and the
                // pruning rules in Algorithm 3's left-to-right order
                // (pruning reads `gmax`, which this same pass advances).
                for i in lo..=hi_cell {
                    let best = tmp[i].max(cur[i - 1] + gap);
                    if pruned(best, h[i], gmax) {
                        cur[i] = NEG_INF;
                    } else {
                        cur[i] = best;
                        if block_skip {
                            set_live(live_cur, i);
                        }
                        if best > gmax {
                            gmax = best;
                            gmax_depth = depth;
                            gmax_qend = i as u32;
                        }
                        f_col = f_col.max(best + h[i]);
                        g_col = g_col.max(best);
                    }
                }
                lo = hi_cell + 1;
            }

            // Early exits (§3.2): no improvement possible along this path…
            if f_col <= gmax {
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            // …or the threshold is out of reach.
            if rules.threshold && f_col < min_score {
                return SearchNode {
                    handle: child,
                    depth,
                    f: f_col,
                    g: g_col,
                    gmax,
                    gmax_depth,
                    gmax_qend,
                    status: Status::Unviable,
                    c: Box::new([]),
                    e: Box::new([]),
                    seq,
                };
            }
            std::mem::swap(prev, cur);
            if block_skip {
                std::mem::swap(live_prev, live_cur);
            }
        }
        consumed += got as u32;
    }

    // Whole arc consumed without a terminator: an internal node, still
    // promising — keep its final column for the children.
    debug_assert!(!child.is_leaf(), "leaf arcs end with a terminator");
    SearchNode {
        handle: child,
        depth,
        f: f_col,
        g: g_col,
        gmax,
        gmax_depth,
        gmax_qend,
        status: Status::Viable,
        c: scratch.prev.clone().into_boxed_slice(),
        e: Box::new([]),
        seq,
    }
}

/// The plain scalar transcription of Algorithm 3 — one fused loop per
/// column, no profile, no blocks. Kept as the differential oracle for the
/// production kernel: `expand_with_rules` must match it byte for byte on
/// every field of the returned node and on the column count.
// Mirrors the `expand_with_rules` signature exactly so the two kernels are
// drop-in interchangeable in the differential tests; see the note there.
#[allow(clippy::too_many_arguments)]
pub fn expand_reference<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    scoring: &Scoring,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut ExpandScratch,
    columns: &mut u64,
    rules: PruneRules,
) -> SearchNode {
    debug_assert_eq!(parent.status, Status::Viable);
    debug_assert_eq!(parent.c.len(), query.len() + 1);
    let n = query.len();
    let gap = scoring.gap.linear_per_symbol();
    let parent_depth = parent.depth;
    let arc_total = tree.arc_len(parent_depth, child);

    let mut gmax = parent.gmax;
    let mut gmax_depth = parent.gmax_depth;
    let mut gmax_qend = parent.gmax_qend;

    scratch.prev.clear();
    scratch.prev.extend_from_slice(&parent.c);
    scratch.cur.resize(n + 1, NEG_INF);
    scratch.chunk.resize(ARC_CHUNK, 0);

    let mut depth = parent_depth;
    let mut consumed = 0u32;
    let mut f_col = NEG_INF;
    let mut g_col = NEG_INF;

    let terminal = |gmax: Score, gmax_depth: u32, gmax_qend: u32, depth: u32| SearchNode {
        handle: child,
        depth,
        f: gmax,
        g: gmax,
        gmax,
        gmax_depth,
        gmax_qend,
        status: if gmax >= min_score {
            Status::Accepted
        } else {
            Status::Unviable
        },
        c: Box::new([]),
        e: Box::new([]),
        seq,
    };

    while consumed < arc_total {
        let got = tree.arc_fill(parent_depth, child, consumed, &mut scratch.chunk);
        debug_assert!(got > 0, "arc_fill must make progress");
        for k in 0..got {
            let t = scratch.chunk[k];
            if t == TERMINATOR {
                // End of a leaf arc: "no further expansion is possible".
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            *columns += 1;
            depth += 1;
            let prev = &scratch.prev;
            let cur = &mut scratch.cur;

            let pruned = |v: Score, hi: Score, gmax: Score| -> bool {
                (rules.non_positive && v <= 0)
                    || (rules.no_improvement && v + hi <= gmax)
                    || (rules.threshold && v + hi < min_score)
            };

            // Row 0: the empty query prefix can only extend by a deletion;
            // resets to zero are "not permitted outside of the seed entry".
            let v0 = prev[0] + gap;
            cur[0] = if pruned(v0, h[0], gmax) { NEG_INF } else { v0 };
            f_col = if cur[0] == NEG_INF {
                NEG_INF
            } else {
                cur[0] + h[0]
            };
            g_col = cur[0];

            for i in 1..=n {
                let replace = prev[i - 1] + scoring.sub(query[i - 1], t);
                let insert = cur[i - 1] + gap; // skip a query symbol
                let delete = prev[i] + gap; // skip a target symbol
                let best = replace.max(insert).max(delete);
                if pruned(best, h[i], gmax) {
                    cur[i] = NEG_INF;
                } else {
                    cur[i] = best;
                    if best > gmax {
                        gmax = best;
                        gmax_depth = depth;
                        gmax_qend = i as u32;
                    }
                    f_col = f_col.max(best + h[i]);
                    g_col = g_col.max(best);
                }
            }

            // Early exits (§3.2): no improvement possible along this path…
            if f_col <= gmax {
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            // …or the threshold is out of reach.
            if rules.threshold && f_col < min_score {
                return SearchNode {
                    handle: child,
                    depth,
                    f: f_col,
                    g: g_col,
                    gmax,
                    gmax_depth,
                    gmax_qend,
                    status: Status::Unviable,
                    c: Box::new([]),
                    e: Box::new([]),
                    seq,
                };
            }
            std::mem::swap(&mut scratch.prev, &mut scratch.cur);
        }
        consumed += got as u32;
    }

    // Whole arc consumed without a terminator: an internal node, still
    // promising — keep its final column for the children.
    debug_assert!(!child.is_leaf(), "leaf arcs end with a terminator");
    SearchNode {
        handle: child,
        depth,
        f: f_col,
        g: g_col,
        gmax,
        gmax_depth,
        gmax_qend,
        status: Status::Viable,
        c: scratch.prev.clone().into_boxed_slice(),
        e: Box::new([]),
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::root_node;
    use crate::heuristic::heuristic_vector;
    use oasis_align::Scoring;
    use oasis_bioseq::{Alphabet, DatabaseBuilder, SequenceDatabase};
    use oasis_suffix::SuffixTree;

    fn figure2_db() -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("s0", "AGTACGCCTAG").unwrap();
        b.finish()
    }

    /// Find the internal node whose path label is `label`.
    fn node_by_label(tree: &SuffixTree, label: &str) -> NodeHandle {
        let alpha = Alphabet::dna();
        (0..SuffixTreeAccess::num_internal(tree))
            .map(NodeHandle::internal)
            .find(|&h| alpha.decode_all(&tree.path_label(h)) == label)
            .unwrap_or_else(|| panic!("no internal node with path {label}"))
    }

    /// Drive one expansion of the §3.3 walkthrough: query TACG, unit
    /// matrix, minScore 1.
    fn walkthrough_expand(label: &str) -> SearchNode {
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).expect("root viable");
        let child = node_by_label(&tree, label);
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        expand(
            &tree,
            &root,
            child,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        )
    }

    #[test]
    fn root_node_matches_paper() {
        // §3.3: the root entry has C = [0,0,0,0,−∞], f = 4, g = 0.
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        assert_eq!(root.f, 4);
        assert_eq!(root.g, 0);
        assert_eq!(root.gmax, 0);
        assert_eq!(&root.c[..4], &[0, 0, 0, 0]);
        assert_eq!(root.c[4], NEG_INF); // h_4 = 0 < minScore prunes it
        assert_eq!(root.status, Status::Viable);
    }

    #[test]
    fn expand_node_1n_path_a() {
        // Paper: expanding 1N (path "A") gives a VIABLE node with f=3, and
        // the only surviving C entry is c_2 = 1.
        let node = walkthrough_expand("A");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 3);
        assert_eq!(node.g, 1);
        assert_eq!(node.gmax, 1);
        assert_eq!(node.c[2], 1);
        for i in [0usize, 1, 3, 4] {
            assert_eq!(node.c[i], NEG_INF, "c[{i}] should be pruned");
        }
    }

    #[test]
    fn expand_node_2n_path_c() {
        // Paper: 2N expansion results in f = 2 and g = 1.
        let node = walkthrough_expand("C");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 2);
        assert_eq!(node.g, 1);
    }

    #[test]
    fn expand_node_3n_path_g_accepted() {
        // Paper: "The expansion of node 3N results in f and g values of 1,
        // so this node is tagged as ACCEPTED."
        let node = walkthrough_expand("G");
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 1);
        assert_eq!(node.g, 1);
        assert_eq!(node.gmax, 1);
    }

    #[test]
    fn expand_node_4n_path_ta() {
        // Paper: 4N (path "TA") expands two columns to a VIABLE node with
        // f = 4; the strongest alignment so far is TA/TA with score 2.
        let node = walkthrough_expand("TA");
        assert_eq!(node.status, Status::Viable);
        assert_eq!(node.f, 4);
        assert_eq!(node.g, 2);
        assert_eq!(node.gmax, 2);
        assert_eq!(node.gmax_depth, 2);
        assert_eq!(node.gmax_qend, 2);
        assert_eq!(node.c[2], 2);
    }

    #[test]
    fn expand_leaf_2l_accepts_with_score_4() {
        // Paper: expanding 2L from 4N reaches an accept state in the second
        // column with f = g = 4.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let ta = node_by_label(&tree, "TA");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta_node = expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        let leaf2 = NodeHandle::leaf(2);
        let node = expand(
            &tree,
            &ta_node,
            leaf2,
            &query,
            &scoring,
            &h,
            1,
            2,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 4);
        assert_eq!(node.g, 4);
        assert_eq!(node.gmax_depth, 4); // TACG: whole 4-symbol path
        assert_eq!(node.gmax_qend, 4);
    }

    #[test]
    fn expand_leaf_8l_accepts_with_score_2() {
        // Paper: 8L's expansion results in f and g values of 2.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let ta = node_by_label(&tree, "TA");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta_node = expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        let leaf8 = NodeHandle::leaf(8);
        let node = expand(
            &tree,
            &ta_node,
            leaf8,
            &query,
            &scoring,
            &h,
            1,
            2,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Accepted);
        assert_eq!(node.f, 2);
        assert_eq!(node.g, 2);
        assert_eq!(node.gmax, 2);
    }

    #[test]
    fn columns_counter_counts_dp_columns() {
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let ta = node_by_label(&tree, "TA");
        expand(
            &tree,
            &root,
            ta,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(columns, 2); // "TA" = two columns
    }

    #[test]
    fn disabled_rules_change_work_not_results() {
        // Rules off keeps more cells alive: the node is still viable with
        // the same f/g/gmax, only the C vector retains extra entries.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        let a = node_by_label(&tree, "A");
        let mut scratch = ExpandScratch::default();
        let mut cols = 0;
        let strict = expand(
            &tree,
            &root,
            a,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut cols,
        );
        let rules_off = PruneRules {
            non_positive: false,
            no_improvement: false,
            threshold: false,
        };
        let loose = expand_with_rules(
            &tree,
            &root,
            a,
            &query,
            &scoring,
            &h,
            1,
            1,
            &mut scratch,
            &mut cols,
            rules_off,
        );
        assert_eq!(strict.f, loose.f);
        assert_eq!(strict.g, loose.g);
        assert_eq!(strict.gmax, loose.gmax);
        assert_eq!(strict.status, loose.status);
        // The loose expansion keeps at least as many live C entries.
        let live = |n: &SearchNode| n.c.iter().filter(|&&v| v > NEG_INF / 2).count();
        assert!(live(&loose) >= live(&strict));
    }

    #[test]
    fn fast_kernel_matches_reference_on_walkthrough_tree() {
        // Every (node, minScore, rule-set) cell of the §3.3 tree: the
        // production kernel and the scalar oracle must agree on every
        // field of the returned node and on the column count.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let rule_sets = [
            PruneRules::default(),
            PruneRules {
                non_positive: false,
                no_improvement: true,
                threshold: true,
            },
            PruneRules {
                non_positive: true,
                no_improvement: false,
                threshold: false,
            },
            PruneRules {
                non_positive: false,
                no_improvement: false,
                threshold: false,
            },
        ];
        for min_score in 1..=4 {
            let Some(root) = root_node(&query, &h, min_score) else {
                continue;
            };
            for label in ["A", "C", "G", "TA"] {
                let child = node_by_label(&tree, label);
                for rules in rule_sets {
                    let mut s1 = ExpandScratch::default();
                    let mut s2 = ExpandScratch::default();
                    let (mut c1, mut c2) = (0u64, 0u64);
                    let fast = expand_with_rules(
                        &tree, &root, child, &query, &scoring, &h, min_score, 7, &mut s1, &mut c1,
                        rules,
                    );
                    let slow = expand_reference(
                        &tree, &root, child, &query, &scoring, &h, min_score, 7, &mut s2, &mut c2,
                        rules,
                    );
                    assert_eq!(fast, slow, "label={label} min={min_score} rules={rules:?}");
                    assert_eq!(c1, c2, "column count label={label} min={min_score}");
                }
            }
        }
    }

    #[test]
    fn profile_is_rebuilt_when_scoring_changes() {
        // Same query, different matrix, same scratch: the cached profile
        // must not leak across scoring configurations.
        let query = vec![0u8, 1, 2, 3];
        let mut scratch = ExpandScratch::default();
        scratch.ensure_profile(&query, &Scoring::unit_dna());
        let unit = scratch.profile.clone();
        let mut skewed = Scoring::unit_dna();
        skewed.gap = oasis_align::GapModel::linear(-3);
        scratch.ensure_profile(&query, &skewed);
        // Gap change alone: substitution rows identical but key differs.
        assert_eq!(scratch.profile, unit);
        assert_eq!(scratch.profile_scoring.as_ref(), Some(&skewed));
    }

    #[test]
    fn unviable_when_threshold_unreachable() {
        // minScore 5 > best possible along "G" (f_col = 1): unviable.
        let db = figure2_db();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        // Root with minScore 4 still viable (f = 4).
        let root = root_node(&query, &h, 4).unwrap();
        let g = node_by_label(&tree, "G");
        let mut scratch = ExpandScratch::default();
        let mut columns = 0;
        let node = expand(
            &tree,
            &root,
            g,
            &query,
            &scoring,
            &h,
            4,
            1,
            &mut scratch,
            &mut columns,
        );
        assert_eq!(node.status, Status::Unviable);
    }
}
