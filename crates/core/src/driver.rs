//! The resumable search driver: Algorithms 1 and 2 as an explicit state
//! machine.
//!
//! [`SearchDriver`] advances the best-first search one step at a time
//! ([`SearchDriver::step`]) and yields hits incrementally
//! ([`SearchDriver::next_hit`]) without consuming itself, so callers can
//! interleave searches, abort early, inspect [`SearchDriver::score_bound`]
//! between hits, or embed the search inside a larger scheduler (the
//! `oasis-engine` crate runs one driver per query across a worker pool).
//! [`crate::OasisSearch`] is a thin iterator facade over this type.

use std::collections::VecDeque;

use oasis_align::{GapModel, Score, Scoring, NEG_INF};
use oasis_bioseq::SequenceDatabase;
use oasis_suffix::SuffixTreeAccess;

use crate::affine::{expand_affine, AffineScratch};
use crate::expand::{expand, ExpandScratch};
use crate::frontier::Frontier;
use crate::heuristic::heuristic_vector;
use crate::node::{SearchNode, Status};
use crate::search::{Hit, OasisParams, ReportMode, SearchStats};

/// What one call to [`SearchDriver::step`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A hit was proven optimal and is returned to the caller.
    Hit(Hit),
    /// One unit of search work was done (a node expanded or reported);
    /// no hit is ready yet — call `step` again.
    Advanced,
    /// The search is complete: no further hits will ever be produced.
    Exhausted,
}

/// Build the root search node (Algorithm 2). Returns `None` when even the
/// root cannot reach `min_score` (e.g. an empty query).
///
/// Public so alternative search drivers (e.g. the frontier-ordering
/// ablation in `oasis-bench`) can reuse the initialization.
pub fn root_node(query: &[u8], h: &[Score], min_score: Score) -> Option<SearchNode> {
    let n = query.len();
    let c: Box<[Score]> = (0..=n)
        .map(|i| if h[i] >= min_score { 0 } else { NEG_INF })
        .collect();
    let f = (0..=n)
        .filter(|&i| c[i] != NEG_INF)
        .map(|i| h[i])
        .max()
        .unwrap_or(NEG_INF);
    if f < min_score {
        return None;
    }
    Some(SearchNode {
        handle: oasis_suffix::NodeHandle::internal(0),
        depth: 0,
        f,
        g: 0,
        gmax: 0,
        gmax_depth: 0,
        gmax_qend: 0,
        status: Status::Viable,
        c,
        e: Box::new([]),
        seq: 0,
    })
}

/// The OASIS best-first search as a resumable state machine.
///
/// Construction seeds the frontier with the root node; each [`step`]
/// (or [`next_hit`]) advances the search just far enough to make progress.
/// Hits arrive in non-increasing score order — the paper's online property
/// — and within one score level in increasing start-position order. That
/// tie-break is *canonical*: it depends only on the database text and the
/// query, never on suffix-tree node boundaries or heap insertion order, so
/// any two indexes over the same text (in-memory, disk-resident, or a
/// partition of the database searched shard by shard) emit byte-identical
/// hit streams. The sharded engine's k-way merge relies on exactly this.
///
/// [`step`]: SearchDriver::step
/// [`next_hit`]: SearchDriver::next_hit
pub struct SearchDriver<'a, T: SuffixTreeAccess + ?Sized> {
    tree: &'a T,
    db: &'a SequenceDatabase,
    query: Vec<u8>,
    scoring: &'a Scoring,
    h: Vec<Score>,
    min_score: Score,
    early_stop: bool,
    report: ReportMode,
    frontier: Frontier,
    /// Ready hits in the canonical emission order.
    pending: VecDeque<Hit>,
    /// Reports of the score level currently being drained (all have score
    /// `group_score`). The group closes — is sorted by `t_start`,
    /// deduplicated, and moved to `pending` — only once the frontier bound
    /// drops below `group_score`, so within one score level emission order
    /// is the canonical `t_start` order rather than heap pop order.
    group: Vec<Hit>,
    group_score: Score,
    reported: Vec<bool>,
    reported_count: u32,
    stats: SearchStats,
    next_seq: u64,
    scratch: ExpandScratch,
    affine_scratch: AffineScratch,
    kids: Vec<oasis_suffix::NodeHandle>,
}

impl<'a, T: SuffixTreeAccess + ?Sized> SearchDriver<'a, T> {
    /// Set up a search of `query` against `db` through its suffix tree.
    ///
    /// The tree must index exactly `db` (same text); `query` must be encoded
    /// with `db`'s alphabet.
    pub fn new(
        tree: &'a T,
        db: &'a SequenceDatabase,
        query: &[u8],
        scoring: &'a Scoring,
        params: &OasisParams,
    ) -> Self {
        assert!(params.min_score >= 1, "minScore must be positive");
        assert_eq!(
            tree.text_len(),
            db.text_len(),
            "suffix tree does not index this database"
        );
        debug_assert!(query.iter().all(|&c| (c as usize) < db.alphabet().len()));
        let h = heuristic_vector(query, scoring);
        let mut frontier = Frontier::new();
        if let Some(root) = root_node(query, &h, params.min_score) {
            frontier.push(root);
        }
        SearchDriver {
            tree,
            db,
            query: query.to_vec(),
            scoring,
            h,
            min_score: params.min_score,
            early_stop: params.early_stop_all_sequences,
            report: params.report,
            frontier,
            pending: VecDeque::new(),
            group: Vec::new(),
            group_score: NEG_INF,
            reported: vec![false; db.num_sequences() as usize],
            reported_count: 0,
            stats: SearchStats::default(),
            next_seq: 1,
            scratch: ExpandScratch::default(),
            affine_scratch: AffineScratch::default(),
            kids: Vec::new(),
        }
    }

    /// Counters so far (final once the search is exhausted).
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// The encoded query this driver is searching for.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// An upper bound on the score of any hit this search can still emit,
    /// or `None` when the search is exhausted. This is what makes the
    /// E-value-ordered reporting of [`crate::evalue`] possible: a held-back
    /// hit may be released once no future hit can undercut its E-value.
    pub fn score_bound(&self) -> Option<Score> {
        let frontier_bound = self.frontier.bound();
        let group_bound = (!self.group.is_empty()).then_some(self.group_score);
        let pending_bound = self.pending.front().map(|h| h.score);
        [frontier_bound, group_bound, pending_bound]
            .into_iter()
            .flatten()
            .max()
    }

    /// Perform one unit of search work: emit a ready hit, or pop and
    /// process one frontier node. Returns [`StepOutcome::Exhausted`] once
    /// the search is complete (and on every call thereafter).
    pub fn step(&mut self) -> StepOutcome {
        if let Some(hit) = self.pending.pop_front() {
            self.stats.hits_emitted += 1;
            return StepOutcome::Hit(hit);
        }
        if self.early_stop
            && self.report == ReportMode::BestPerSequence
            && self.reported_count == self.db.num_sequences()
        {
            // Anything still on the frontier — or buffered in the open
            // group — can only cover already-reported sequences.
            self.frontier.clear();
            self.group.clear();
            return StepOutcome::Exhausted;
        }
        if !self.group.is_empty() && self.frontier.bound().is_none_or(|b| b < self.group_score) {
            // No frontier node can contribute to the open score level any
            // more: the group is complete and may be emitted canonically.
            self.close_group();
            return StepOutcome::Advanced;
        }
        let Some(node) = self.frontier.pop() else {
            return StepOutcome::Exhausted;
        };
        match node.status {
            Status::Accepted => self.report_accepted(&node),
            Status::Viable => self.expand_children(&node),
            Status::Unviable => unreachable!("unviable nodes are never enqueued"),
        }
        StepOutcome::Advanced
    }

    /// Advance the search until the next hit is proven optimal, or `None`
    /// when the search is exhausted. Equivalent to the iterator `next` of
    /// [`crate::OasisSearch`], but `&mut self`: the driver stays usable.
    pub fn next_hit(&mut self) -> Option<Hit> {
        loop {
            match self.step() {
                StepOutcome::Hit(hit) => return Some(hit),
                StepOutcome::Advanced => continue,
                StepOutcome::Exhausted => return None,
            }
        }
    }

    /// Drain the remaining search, appending every hit to `out`. Returns
    /// the final statistics.
    pub fn drain_into(&mut self, out: &mut Vec<Hit>) -> SearchStats {
        while let Some(hit) = self.next_hit() {
            out.push(hit);
        }
        self.stats
    }

    fn report_accepted(&mut self, node: &SearchNode) {
        debug_assert!(node.gmax >= self.min_score);
        // An accepted node pops only while it is the frontier maximum, and
        // the bound never increases — so every accepted node reached while
        // a group is open carries exactly the group's score.
        debug_assert!(self.group.is_empty() || self.group_score == node.gmax);
        self.group_score = node.gmax;
        let mut leaves = std::mem::take(&mut self.group);
        let first = leaves.len();
        self.tree.leaves_under(node.handle, &mut |p| {
            leaves.push(Hit {
                seq: 0, // filled below, once per leaf
                score: node.gmax,
                t_start: p,
                t_len: node.gmax_depth,
                q_end: node.gmax_qend,
            })
        });
        for hit in &mut leaves[first..] {
            hit.seq = self.db.seq_of_position(hit.t_start);
        }
        // Sequences already reported at a (strictly) higher score level can
        // be dropped immediately; same-level duplicates are resolved when
        // the group closes.
        if self.report == ReportMode::BestPerSequence {
            let reported = &self.reported;
            leaves.retain(|h| !reported[h.seq as usize]);
        }
        self.group = leaves;
    }

    /// The open score level is complete: order its reports canonically (by
    /// start position — unique per report), apply best-per-sequence
    /// deduplication in that order, and queue the survivors for emission.
    fn close_group(&mut self) {
        self.group.sort_unstable_by_key(|h| h.t_start);
        for hit in self.group.drain(..) {
            if self.report == ReportMode::BestPerSequence {
                let flag = &mut self.reported[hit.seq as usize];
                if *flag {
                    continue;
                }
                *flag = true;
                self.reported_count += 1;
            }
            self.pending.push_back(hit);
        }
    }

    fn expand_children(&mut self, node: &SearchNode) {
        self.stats.nodes_expanded += 1;
        let mut kids = std::mem::take(&mut self.kids);
        self.tree.children_into(node.handle, &mut kids);
        for &child in &kids {
            let seq = self.next_seq;
            self.next_seq += 1;
            let new = match self.scoring.gap {
                GapModel::Linear { .. } => expand(
                    self.tree,
                    node,
                    child,
                    &self.query,
                    self.scoring,
                    &self.h,
                    self.min_score,
                    seq,
                    &mut self.scratch,
                    &mut self.stats.columns_expanded,
                ),
                GapModel::Affine { open, extend } => expand_affine(
                    self.tree,
                    node,
                    child,
                    &self.query,
                    &self.scoring.matrix,
                    open,
                    extend,
                    &self.h,
                    self.min_score,
                    seq,
                    &mut self.affine_scratch,
                    &mut self.stats.columns_expanded,
                ),
            };
            match new.status {
                Status::Unviable => self.stats.nodes_pruned += 1,
                Status::Viable | Status::Accepted => {
                    self.frontier.push(new);
                    self.stats.nodes_enqueued += 1;
                }
            }
        }
        self.kids = kids;
        self.stats.max_queue = self.stats.max_queue.max(self.frontier.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::OasisSearch;
    use oasis_align::{
        GapModel, KarlinParams, SubstitutionMatrix, SwScanner, NEG_INF as SCORE_NEG_INF,
    };
    use oasis_bioseq::{Alphabet, AlphabetKind, DatabaseBuilder, SeqId};
    use oasis_suffix::SuffixTree;

    fn dna_db(seqs: &[&str]) -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn search_all(db: &SequenceDatabase, query: &str, min_score: Score) -> (Vec<Hit>, SearchStats) {
        let tree = SuffixTree::build(db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str(query).unwrap();
        let params = OasisParams::with_min_score(min_score);
        OasisSearch::new(&tree, db, &q, &scoring, &params).run()
    }

    #[test]
    fn driver_steps_match_iterator() {
        // The step-based API and the iterator facade are the same search.
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG", "CCCCCC"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);

        let mut driver = SearchDriver::new(&tree, &db, &q, &scoring, &params);
        let mut stepped = Vec::new();
        loop {
            match driver.step() {
                StepOutcome::Hit(hit) => stepped.push(hit),
                StepOutcome::Advanced => {}
                StepOutcome::Exhausted => break,
            }
        }
        let (iterated, stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        assert_eq!(stepped, iterated);
        assert_eq!(driver.stats(), stats);
        // Once exhausted, the driver stays exhausted.
        assert_eq!(driver.step(), StepOutcome::Exhausted);
        assert_eq!(driver.next_hit(), None);
    }

    #[test]
    fn drain_into_collects_remaining_hits() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let mut driver = SearchDriver::new(&tree, &db, &q, &scoring, &params);
        let first = driver.next_hit().expect("at least one hit");
        let mut rest = Vec::new();
        let stats = driver.drain_into(&mut rest);
        let (all, all_stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        let mut resumed = vec![first];
        resumed.extend(rest);
        assert_eq!(resumed, all);
        assert_eq!(stats, all_stats);
        assert_eq!(driver.query(), &q[..]);
    }

    #[test]
    fn paper_walkthrough_finds_tacg() {
        // §3.3 end state: the maximum local alignment is TACG at position 2
        // with score 4.
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, stats) = search_all(&db, "TACG", 1);
        assert_eq!(hits.len(), 1);
        let hit = hits[0];
        assert_eq!(hit.seq, 0);
        assert_eq!(hit.score, 4);
        assert_eq!(hit.t_start, 2);
        assert_eq!(hit.t_len, 4);
        assert_eq!(hit.q_end, 4);
        assert!(stats.columns_expanded > 0);
        assert!(stats.hits_emitted == 1);
    }

    #[test]
    fn hit_alignment_recovers_operations() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let hits: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();
        let aln = hits[0].alignment(&db, &q, &scoring);
        assert_eq!(aln.score, 4);
        assert_eq!(aln.cigar(), "4R");
        assert_eq!(aln.t_start, 2);
        assert_eq!(aln.t_end, 6);
    }

    #[test]
    fn scores_arrive_in_non_increasing_order() {
        let db = dna_db(&[
            "AGTACGCCTAG", // TACG exact: 4
            "TACCG",       // TAC-G: 3
            "GGTAGG",      // TA..: 2
            "CCCCCC",      // C: 1
        ]);
        let (hits, _) = search_all(&db, "TACG", 1);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(hits[0].score, 4);
    }

    #[test]
    fn matches_smith_waterman_per_sequence() {
        let db = dna_db(&[
            "AGTACGCCTAG",
            "TACCG",
            "GGTAGG",
            "CCCCCC",
            "TTTTTTT",
            "ACGTACGTACGT",
            "GATTACA",
        ]);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        for min_score in 1..=4 {
            let (hits, _) = search_all(&db, "TACG", min_score);
            let sw = SwScanner::new().scan(&db, &q, &scoring, min_score);
            let mut got: Vec<(SeqId, Score)> = hits.iter().map(|h| (h.seq, h.score)).collect();
            got.sort_unstable();
            let mut want: Vec<(SeqId, Score)> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "min_score {min_score}");
        }
    }

    #[test]
    fn equal_scores_emit_in_start_position_order() {
        // Three disjoint exact occurrences of AC, all score 2, reached via
        // different tree paths: the canonical tie-break orders them by
        // global start position, independent of heap insertion order.
        let db = dna_db(&["GGAC", "ACGG", "TTACTT"]);
        let (hits, _) = search_all(&db, "AC", 2);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.score == 2));
        let starts: Vec<u32> = hits.iter().map(|h| h.t_start).collect();
        assert_eq!(starts, vec![2, 5, 12]);
        // Same canonical order in all-occurrences mode.
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("AC").unwrap();
        let params = OasisParams::with_min_score(2).all_occurrences();
        let (all, _) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        let mut by_level: Vec<(Score, u32)> = all.iter().map(|h| (h.score, h.t_start)).collect();
        let emitted = by_level.clone();
        by_level.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        assert_eq!(emitted, by_level, "canonical (score desc, t_start asc)");
    }

    #[test]
    fn min_score_filters_results() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "CCCCCC"]);
        let (hits, _) = search_all(&db, "TACG", 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].seq, 0);
    }

    #[test]
    fn no_results_when_threshold_unreachable() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, stats) = search_all(&db, "TACG", 5);
        assert!(hits.is_empty());
        // The root itself is unviable (f = 4 < 5): nothing is expanded.
        assert_eq!(stats.nodes_expanded, 0);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let db = dna_db(&["AGTACGCCTAG"]);
        let (hits, _) = search_all(&db, "", 1);
        assert!(hits.is_empty());
    }

    #[test]
    fn online_prefix_equals_full_run_prefix() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG", "CCCCCC", "GATTACA"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let all: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();
        let top2: Vec<Hit> = OasisSearch::new(&tree, &db, &q, &scoring, &params)
            .take(2)
            .collect();
        assert_eq!(&all[..2], &top2[..]);
    }

    #[test]
    fn duplicate_sequences_each_reported_once() {
        let db = dna_db(&["TACG", "TACG", "TACG"]);
        let (hits, _) = search_all(&db, "TACG", 1);
        assert_eq!(hits.len(), 3);
        let mut seqs: Vec<SeqId> = hits.iter().map(|h| h.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 3);
        assert!(hits.iter().all(|h| h.score == 4));
    }

    #[test]
    fn columns_expanded_less_than_sw() {
        // OASIS's filtering: far fewer columns than S-W's (= total residues)
        // on a database with shared structure.
        let seqs: Vec<String> = (0..50)
            .map(|i| {
                let tail = match i % 4 {
                    0 => "ACGT",
                    1 => "GGCC",
                    2 => "TTAA",
                    _ => "CAGT",
                };
                format!("{}{}", "ACGTACGTACGT", tail)
            })
            .collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let db = dna_db(&refs);
        let (_, stats) = search_all(&db, "ACGTACG", 5);
        assert!(
            stats.columns_expanded < db.total_residues(),
            "OASIS {} vs S-W {}",
            stats.columns_expanded,
            db.total_residues()
        );
    }

    #[test]
    fn from_evalue_uses_equation_3() {
        let kp = KarlinParams::estimate(
            &SubstitutionMatrix::unit(AlphabetKind::Dna),
            &oasis_align::background_dna(),
        )
        .unwrap();
        let relaxed = OasisParams::from_evalue(&kp, 16, 1_000_000, 20_000.0);
        let strict = OasisParams::from_evalue(&kp, 16, 1_000_000, 1.0);
        assert!(strict.min_score > relaxed.min_score);
    }

    #[test]
    fn works_with_protein_scoring() {
        let mut b = DatabaseBuilder::new(Alphabet::protein());
        b.push_str("p0", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")
            .unwrap();
        b.push_str("p1", "GGGGGAKQRQISGGGGG").unwrap();
        b.push_str("p2", "WWWWWWWW").unwrap();
        let db = b.finish();
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::blosum62_protein();
        let q = Alphabet::protein().encode_str("AKQRQISF").unwrap();
        let params = OasisParams::with_min_score(20);
        let (hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        // Both homologous sequences found, in score order.
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        let mut scanner = SwScanner::new();
        let sw = scanner.scan(&db, &q, &scoring, 20);
        assert_eq!(hits.len(), sw.len());
        assert_eq!(hits[0].score, sw[0].hit.score);
    }

    #[test]
    fn gap_model_affects_scores_identically_to_sw() {
        let db = dna_db(&["TTAAGGTT", "TTACGGTT", "GGGGG"]);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 2, -3),
            GapModel::linear(-1),
        );
        let q = Alphabet::dna().encode_str("TTAGGTT").unwrap();
        let tree = SuffixTree::build(&db);
        let params = OasisParams::with_min_score(3);
        let (hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &q, &scoring, 3);
        let mut got: Vec<(SeqId, Score)> = hits.iter().map(|h| (h.seq, h.score)).collect();
        got.sort_unstable();
        let mut want: Vec<(SeqId, Score)> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn all_occurrences_reports_every_position() {
        // ACGACGACG contains ACG at 0, 3, 6; best-per-sequence reports one
        // hit, all-occurrences reports all three, still score-ordered.
        let db = dna_db(&["ACGACGACG", "TTTT"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("ACG").unwrap();
        let best = OasisParams::with_min_score(3);
        let all = OasisParams::with_min_score(3).all_occurrences();
        let (best_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &best).run();
        let (all_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &all).run();
        assert_eq!(best_hits.len(), 1);
        assert_eq!(all_hits.len(), 3);
        let mut starts: Vec<u32> = all_hits.iter().map(|h| h.t_start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 3, 6]);
        assert!(all_hits.iter().all(|h| h.score == 3));
        assert!(all_hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn all_occurrences_is_superset_of_best() {
        let db = dna_db(&["AGTACGCCTAG", "TACCGTACG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let best = OasisParams::with_min_score(2);
        let all = OasisParams::with_min_score(2).all_occurrences();
        let (best_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &best).run();
        let (all_hits, _) = OasisSearch::new(&tree, &db, &q, &scoring, &all).run();
        // Every best hit's (seq, score) appears among the occurrences.
        for b in &best_hits {
            assert!(
                all_hits
                    .iter()
                    .any(|a| a.seq == b.seq && a.score == b.score),
                "missing {b:?}"
            );
        }
        assert!(all_hits.len() >= best_hits.len());
    }

    #[test]
    fn early_stop_off_yields_same_results() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let with_stop = OasisParams::with_min_score(1);
        let without_stop = OasisParams {
            early_stop_all_sequences: false,
            ..with_stop
        };
        let (a, a_stats) = OasisSearch::new(&tree, &db, &q, &scoring, &with_stop).run();
        let (b, b_stats) = OasisSearch::new(&tree, &db, &q, &scoring, &without_stop).run();
        assert_eq!(a, b);
        // Without the early stop the search drains the whole queue, which
        // can only do at least as much work.
        assert!(b_stats.nodes_expanded >= a_stats.nodes_expanded);
    }

    #[test]
    fn score_bound_is_monotone_and_sound() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG", "CCCC"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let mut driver = SearchDriver::new(&tree, &db, &q, &scoring, &params);
        let mut prev_bound = driver.score_bound().expect("root enqueued");
        while let Some(hit) = driver.next_hit() {
            // Every emitted hit respects the bound that preceded it.
            assert!(hit.score <= prev_bound, "{} > {}", hit.score, prev_bound);
            match driver.score_bound() {
                Some(b) => {
                    assert!(b <= prev_bound, "bound must not increase");
                    prev_bound = b;
                }
                None => break,
            }
        }
    }

    #[test]
    fn stats_counters_are_coherent() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let (hits, stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
        assert_eq!(stats.hits_emitted as usize, hits.len());
        assert!(stats.nodes_enqueued >= stats.nodes_expanded.saturating_sub(1));
        assert!(stats.max_queue >= 1);
        assert!(stats.columns_expanded >= stats.nodes_expanded);
    }

    #[test]
    fn root_node_prunes_unreachable_entries() {
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let h = heuristic_vector(&query, &scoring);
        let root = root_node(&query, &h, 1).unwrap();
        assert_eq!(root.f, 4);
        assert_eq!(root.c[4], SCORE_NEG_INF); // h_4 = 0 < minScore prunes it
        assert!(root_node(&query, &h, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "does not index this database")]
    fn mismatched_tree_rejected() {
        let db1 = dna_db(&["ACGT"]);
        let db2 = dna_db(&["ACGTACGT"]);
        let tree = SuffixTree::build(&db1);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let q = Alphabet::dna().encode_str("AC").unwrap();
        let _ = SearchDriver::new(&tree, &db2, &q, &scoring, &params);
    }
}
