//! Affine-gap OASIS — the extension the paper lists as future work (§6:
//! "extending our current implementation to include affine gap penalties …
//! OASIS and S-W must expand three dynamic programming matrices").
//!
//! The expansion mirrors [`crate::expand()`] but carries the Gotoh state per
//! column: `H` (best alignment), `E` (ending in a target-consuming gap run,
//! carried across columns), and `F` (ending in a query-consuming gap run,
//! local to a column). `H ≥ E` and `H ≥ F` pointwise, so the upper bound
//! `f = max_i(H_i + h_i)` and all three pruning rules remain sound — the
//! heuristic's per-position contribution already dominates `extend`
//! (see [`crate::heuristic`]).

use oasis_align::{Score, NEG_INF};
use oasis_bioseq::TERMINATOR;
use oasis_suffix::{NodeHandle, SuffixTreeAccess};

use crate::node::{SearchNode, Status};

/// Scratch buffers for affine expansion.
#[derive(Debug, Default)]
pub struct AffineScratch {
    prev_h: Vec<Score>,
    prev_e: Vec<Score>,
    cur_h: Vec<Score>,
    cur_e: Vec<Score>,
    chunk: Vec<u8>,
}

const ARC_CHUNK: usize = 64;

/// Affine-gap version of Algorithm 3. `parent.c` holds the parent's `H`
/// column; `parent.e` holds its `E` column (empty means "no gap open",
/// i.e. all `−∞`, which is the root's state).
// The arguments are the paper's Algorithm 3 inputs (affine variant), kept
// positional so the code reads against the pseudocode.
#[allow(clippy::too_many_arguments)]
pub fn expand_affine<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    parent: &SearchNode,
    child: NodeHandle,
    query: &[u8],
    matrix: &oasis_align::SubstitutionMatrix,
    open: Score,
    extend: Score,
    h: &[Score],
    min_score: Score,
    seq: u64,
    scratch: &mut AffineScratch,
    columns: &mut u64,
) -> SearchNode {
    debug_assert_eq!(parent.status, Status::Viable);
    let n = query.len();
    let parent_depth = parent.depth;
    let arc_total = tree.arc_len(parent_depth, child);

    let mut gmax = parent.gmax;
    let mut gmax_depth = parent.gmax_depth;
    let mut gmax_qend = parent.gmax_qend;

    scratch.prev_h.clear();
    scratch.prev_h.extend_from_slice(&parent.c);
    scratch.prev_e.clear();
    if parent.e.is_empty() {
        scratch.prev_e.resize(n + 1, NEG_INF);
    } else {
        scratch.prev_e.extend_from_slice(&parent.e);
    }
    scratch.cur_h.resize(n + 1, NEG_INF);
    scratch.cur_e.resize(n + 1, NEG_INF);
    scratch.chunk.resize(ARC_CHUNK, 0);

    let mut depth = parent_depth;
    let mut consumed = 0u32;
    let mut f_col = NEG_INF;
    let mut g_col = NEG_INF;

    let terminal = |gmax: Score, gmax_depth: u32, gmax_qend: u32, depth: u32| SearchNode {
        handle: child,
        depth,
        f: gmax,
        g: gmax,
        gmax,
        gmax_depth,
        gmax_qend,
        status: if gmax >= min_score {
            Status::Accepted
        } else {
            Status::Unviable
        },
        c: Box::new([]),
        e: Box::new([]),
        seq,
    };

    while consumed < arc_total {
        let got = tree.arc_fill(parent_depth, child, consumed, &mut scratch.chunk);
        debug_assert!(got > 0);
        for k in 0..got {
            let t = scratch.chunk[k];
            if t == TERMINATOR {
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            *columns += 1;
            depth += 1;

            let prune = |v: Score, hi: Score, gmax: Score| -> Score {
                if v <= 0 || v + hi <= gmax || v + hi < min_score {
                    NEG_INF
                } else {
                    v
                }
            };

            // Row 0: only target-consuming gaps are possible.
            let e0 = (scratch.prev_h[0] + open + extend).max(scratch.prev_e[0] + extend);
            scratch.cur_e[0] = prune(e0, h[0], gmax);
            scratch.cur_h[0] = scratch.cur_e[0];
            f_col = if scratch.cur_h[0] == NEG_INF {
                NEG_INF
            } else {
                scratch.cur_h[0] + h[0]
            };
            g_col = scratch.cur_h[0];

            let mut f_state = NEG_INF; // F: query-consuming gap, intra-column
            for i in 1..=n {
                let e = (scratch.prev_h[i] + open + extend).max(scratch.prev_e[i] + extend);
                let e = prune(e, h[i], gmax);
                f_state = (scratch.cur_h[i - 1] + open + extend).max(f_state + extend);
                let replace = scratch.prev_h[i - 1] + matrix.score(query[i - 1], t);
                let best = replace.max(e).max(f_state);
                let best = prune(best, h[i], gmax);
                scratch.cur_e[i] = e;
                scratch.cur_h[i] = best;
                if best != NEG_INF {
                    if best > gmax {
                        gmax = best;
                        gmax_depth = depth;
                        gmax_qend = i as u32;
                    }
                    f_col = f_col.max(best + h[i]);
                    g_col = g_col.max(best);
                }
            }

            if f_col <= gmax {
                return terminal(gmax, gmax_depth, gmax_qend, depth);
            }
            if f_col < min_score {
                return SearchNode {
                    handle: child,
                    depth,
                    f: f_col,
                    g: g_col,
                    gmax,
                    gmax_depth,
                    gmax_qend,
                    status: Status::Unviable,
                    c: Box::new([]),
                    e: Box::new([]),
                    seq,
                };
            }
            std::mem::swap(&mut scratch.prev_h, &mut scratch.cur_h);
            std::mem::swap(&mut scratch.prev_e, &mut scratch.cur_e);
        }
        consumed += got as u32;
    }

    debug_assert!(!child.is_leaf(), "leaf arcs end with a terminator");
    SearchNode {
        handle: child,
        depth,
        f: f_col,
        g: g_col,
        gmax,
        gmax_depth,
        gmax_qend,
        status: Status::Viable,
        c: scratch.prev_h.clone().into_boxed_slice(),
        e: scratch.prev_e.clone().into_boxed_slice(),
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{OasisParams, OasisSearch};
    use oasis_align::{GapModel, Scoring, SubstitutionMatrix, SwScanner};
    use oasis_bioseq::{Alphabet, AlphabetKind, DatabaseBuilder, SeqId, SequenceDatabase};
    use oasis_suffix::SuffixTree;

    fn dna_db(seqs: &[&str]) -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn compare_with_sw(db: &SequenceDatabase, query: &str, scoring: &Scoring, min: Score) {
        let tree = SuffixTree::build(db);
        let q = Alphabet::dna().encode_str(query).unwrap();
        let params = OasisParams::with_min_score(min);
        let (hits, _) = OasisSearch::new(&tree, db, &q, scoring, &params).run();
        let sw = SwScanner::new().scan(db, &q, scoring, min);
        let mut got: Vec<(SeqId, Score)> = hits.iter().map(|h| (h.seq, h.score)).collect();
        got.sort_unstable();
        let mut want: Vec<(SeqId, Score)> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        want.sort_unstable();
        assert_eq!(got, want, "query {query} min {min}");
    }

    #[test]
    fn affine_matches_sw_on_gapped_targets() {
        let db = dna_db(&[
            "TTAAGGCCTT", // forces gaps for query TTAACCTT
            "TTAACCTT",   // exact
            "GGGGGG",
            "TTAAGCCTT",
        ]);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 5, -4),
            GapModel::affine(-3, -1),
        );
        for min in [1, 10, 25, 40] {
            compare_with_sw(&db, "TTAACCTT", &scoring, min);
        }
    }

    #[test]
    fn affine_ordering_non_increasing() {
        let db = dna_db(&["TTAAGGCCTT", "TTAACCTT", "TTAC", "ACGTACGT"]);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, 5, -4),
            GapModel::affine(-3, -1),
        );
        let tree = SuffixTree::build(&db);
        let q = Alphabet::dna().encode_str("TTAACCTT").unwrap();
        let params = OasisParams::with_min_score(1);
        let hits: Vec<_> = OasisSearch::new(&tree, &db, &q, &scoring, &params).collect();
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn affine_open_zero_equals_linear() {
        let db = dna_db(&["AGTACGCCTAG", "TACCG", "GGTAGG"]);
        let unit = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let linear = Scoring::new(unit.clone(), GapModel::linear(-1));
        let affine = Scoring::new(unit, GapModel::affine(0, -1));
        let tree = SuffixTree::build(&db);
        let q = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let (lin_hits, _) = OasisSearch::new(&tree, &db, &q, &linear, &params).run();
        let (aff_hits, _) = OasisSearch::new(&tree, &db, &q, &affine, &params).run();
        let lin: Vec<(SeqId, Score)> = lin_hits.iter().map(|h| (h.seq, h.score)).collect();
        let aff: Vec<(SeqId, Score)> = aff_hits.iter().map(|h| (h.seq, h.score)).collect();
        assert_eq!(lin, aff);
    }
}
