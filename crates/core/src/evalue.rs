//! E-value-ordered online reporting — the §4.3 refinement.
//!
//! "BLAST performs additional statistical adjustments to the E value based
//! both on the length of the query and on the lengths of individual
//! sequences in the database. […] OASIS can however perform the same
//! adjustments: […] To strictly maintain online properties, OASIS must also
//! sort the queue based on an optimistic estimate of E-value, as it relates
//! to alignment score. When a particular sequence is accepted, it must then
//! be pushed back on the priority queue with a non-optimistic E value
//! (adjusted for the actual sequence length)."
//!
//! [`EvalueOrderedSearch`] realizes exactly that scheme: it drives the
//! score-ordered [`OasisSearch`] and holds each accepted hit in a reorder
//! buffer keyed by its *length-adjusted* E-value
//! (`E = K · m · L_seq · e^(−λ·S)`). A held hit is released once the
//! optimistic E-value of anything the underlying search can still produce —
//! its score bound combined with the *shortest* sequence length — can no
//! longer undercut it. Output is therefore in non-decreasing adjusted
//! E-value order, still online.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use oasis_align::KarlinParams;
use oasis_suffix::SuffixTreeAccess;

use crate::search::{Hit, OasisSearch};

/// A hit paired with its length-adjusted E-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluedHit {
    /// The underlying hit.
    pub hit: Hit,
    /// Its E-value adjusted for the containing sequence's length.
    pub evalue: f64,
}

/// Min-heap entry ordered by E-value (then deterministic tie-breakers).
struct Held(EvaluedHit);

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on E-value; ties by score desc, seq asc.
        other
            .0
            .evalue
            .total_cmp(&self.0.evalue)
            .then_with(|| self.0.hit.score.cmp(&other.0.hit.score))
            .then_with(|| other.0.hit.seq.cmp(&self.0.hit.seq))
    }
}

/// Online search emitting hits in non-decreasing *adjusted* E-value order.
pub struct EvalueOrderedSearch<'a, T: SuffixTreeAccess + ?Sized> {
    inner: OasisSearch<'a, T>,
    karlin: KarlinParams,
    query_len: u64,
    /// Length of the shortest database sequence — the most optimistic
    /// length adjustment any future hit could enjoy.
    min_seq_len: u64,
    seq_lens: Vec<u64>,
    held: BinaryHeap<Held>,
}

impl<'a, T: SuffixTreeAccess + ?Sized> EvalueOrderedSearch<'a, T> {
    /// Wrap a configured [`OasisSearch`]; `karlin` must describe the same
    /// scoring system.
    pub fn new(
        inner: OasisSearch<'a, T>,
        db: &oasis_bioseq::SequenceDatabase,
        query_len: usize,
        karlin: KarlinParams,
    ) -> Self {
        let seq_lens: Vec<u64> = (0..db.num_sequences())
            .map(|i| db.seq_len(i).max(1) as u64)
            .collect();
        // The optimistic bound asks "how small could a future hit's
        // adjusted E-value be?" — so it must use the shortest sequence a
        // hit could actually land in. Empty sequences can never contain a
        // hit, and letting one drag this length toward 1 collapses the
        // bound to ~0, holding every accepted hit until the search is
        // exhausted: online emission silently degrades to batch.
        let min_seq_len = (0..db.num_sequences())
            .map(|i| db.seq_len(i) as u64)
            .filter(|&len| len > 0)
            .min()
            .unwrap_or(1);
        EvalueOrderedSearch {
            inner,
            karlin,
            query_len: query_len as u64,
            min_seq_len,
            seq_lens,
            held: BinaryHeap::new(),
        }
    }

    fn adjusted(&self, hit: &Hit) -> f64 {
        self.karlin
            .evalue(self.query_len, self.seq_lens[hit.seq as usize], hit.score)
    }

    fn optimistic_bound(&self) -> Option<f64> {
        self.inner
            .score_bound()
            .map(|s| self.karlin.evalue(self.query_len, self.min_seq_len, s))
    }

    /// Upper bound on the score of any hit the underlying search can still
    /// produce, or `None` once it is exhausted. Lets callers observe that
    /// emission is genuinely online (hits released while the search still
    /// has work left), not a drain-then-sort.
    pub fn score_bound(&self) -> Option<oasis_align::Score> {
        self.inner.score_bound()
    }
}

impl<T: SuffixTreeAccess + ?Sized> Iterator for EvalueOrderedSearch<'_, T> {
    type Item = EvaluedHit;

    fn next(&mut self) -> Option<EvaluedHit> {
        loop {
            // Release the cheapest held hit once nothing in the future can
            // undercut it.
            if let Some(top) = self.held.peek() {
                match self.optimistic_bound() {
                    None => return self.held.pop().map(|h| h.0),
                    Some(bound) if top.0.evalue <= bound => return self.held.pop().map(|h| h.0),
                    Some(_) => {}
                }
            }
            match self.inner.next() {
                Some(hit) => {
                    let evalue = self.adjusted(&hit);
                    self.held.push(Held(EvaluedHit { hit, evalue }));
                }
                None => return self.held.pop().map(|h| h.0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::OasisParams;
    use oasis_align::{background_dna, Scoring, SubstitutionMatrix};
    use oasis_bioseq::{Alphabet, AlphabetKind, DatabaseBuilder, SequenceDatabase};
    use oasis_suffix::SuffixTree;

    fn db() -> SequenceDatabase {
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        // Long sequence with a good match, short sequence with a slightly
        // weaker match: length adjustment can reorder them.
        b.push_str(
            "long",
            &format!("{}TACGT{}", "A".repeat(200), "C".repeat(200)),
        )
        .unwrap();
        b.push_str("short", "GTACG").unwrap();
        b.push_str(
            "medium",
            &format!("{}TAGG{}", "G".repeat(30), "A".repeat(30)),
        )
        .unwrap();
        b.finish()
    }

    fn karlin() -> KarlinParams {
        KarlinParams::estimate(
            &SubstitutionMatrix::unit(AlphabetKind::Dna),
            &background_dna(),
        )
        .unwrap()
    }

    fn run_evalue_ordered(database: &SequenceDatabase, min: i32) -> Vec<EvaluedHit> {
        let tree = SuffixTree::build(database);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(min);
        let inner = OasisSearch::new(&tree, database, &query, &scoring, &params);
        EvalueOrderedSearch::new(inner, database, query.len(), karlin()).collect()
    }

    #[test]
    fn evalues_non_decreasing() {
        let database = db();
        let hits = run_evalue_ordered(&database, 1);
        assert!(!hits.is_empty());
        assert!(
            hits.windows(2).all(|w| w[0].evalue <= w[1].evalue),
            "{:?}",
            hits.iter().map(|h| h.evalue).collect::<Vec<_>>()
        );
    }

    #[test]
    fn same_hit_set_as_score_ordered() {
        let database = db();
        let evalue_hits = run_evalue_ordered(&database, 1);

        let tree = SuffixTree::build(&database);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let (score_hits, _) = OasisSearch::new(&tree, &database, &query, &scoring, &params).run();

        let mut a: Vec<_> = evalue_hits
            .iter()
            .map(|h| (h.hit.seq, h.hit.score))
            .collect();
        a.sort_unstable();
        let mut b: Vec<_> = score_hits.iter().map(|h| (h.seq, h.score)).collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_offline_sort() {
        // Online ordering must equal sorting all hits by adjusted E-value.
        let database = db();
        let online: Vec<f64> = run_evalue_ordered(&database, 1)
            .iter()
            .map(|h| h.evalue)
            .collect();
        let mut offline = online.clone();
        offline.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(online, offline);
    }

    #[test]
    fn empty_sequence_does_not_stall_online_emission() {
        // Regression: an empty database sequence used to drag the
        // optimistic length adjustment down to ~1 residue, collapsing the
        // Karlin bound so far below any real hit's adjusted E-value that
        // held hits were only released once the search was exhausted —
        // online emission silently degraded to batch.
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("exact", "TACG").unwrap();
        b.push_str("empty", "").unwrap();
        b.push_str("padded_a", "AATACGAA").unwrap();
        b.push_str("padded_g", "GGTACGGG").unwrap();
        let database = b.finish();

        let tree = SuffixTree::build(&database);
        let scoring = Scoring::unit_dna();
        let query = Alphabet::dna().encode_str("TACG").unwrap();
        let params = OasisParams::with_min_score(1);
        let inner = OasisSearch::new(&tree, &database, &query, &scoring, &params);
        let mut search = EvalueOrderedSearch::new(inner, &database, query.len(), karlin());

        let first = search.next().expect("hits exist");
        assert_eq!(database.name(first.hit.seq), "exact");
        // Online: the first hit must be released while the underlying
        // search still has score-3 work ahead — not held to exhaustion.
        let bound = search.score_bound().expect("search not exhausted");
        assert!(bound >= 3, "first hit released only at bound {bound}");

        // And the full stream is still a correct E-value ordering.
        let mut all = vec![first];
        all.extend(&mut search);
        assert_eq!(all.len(), 3, "one hit per non-empty sequence");
        assert!(all.windows(2).all(|w| w[0].evalue <= w[1].evalue));
    }

    #[test]
    fn length_adjustment_can_reorder_equal_scores() {
        // Two sequences with the same best score: the shorter one has the
        // smaller adjusted E-value and must come first.
        let mut b = DatabaseBuilder::new(Alphabet::dna());
        b.push_str("long", &format!("TACG{}", "A".repeat(300)))
            .unwrap();
        b.push_str("short", "TACG").unwrap();
        let database = b.finish();
        let hits = run_evalue_ordered(&database, 4);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].hit.score, hits[1].hit.score);
        assert_eq!(database.name(hits[0].hit.seq), "short");
        assert!(hits[0].evalue < hits[1].evalue);
    }
}
