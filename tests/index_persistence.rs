//! The index lifecycle's correctness contract: build → persist → load
//! round-trips to **byte-identical hits** against a freshly built index
//! (property-tested across shard counts and thread counts, empty
//! sequences included), a flipped byte anywhere in the artifact fails
//! checksum verification with a clean error instead of garbage hits, and
//! an artifact-loaded generation hot-swaps into a live serving engine
//! without changing results.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use oasis::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per use (proptest reruns cases in-process).
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "oasis-index-persistence-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_db(seqs: &[Vec<u8>]) -> Arc<SequenceDatabase> {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    Arc::new(b.finish())
}

fn jobs_for(queries: &[Vec<u8>]) -> Vec<BatchQuery> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| BatchQuery::named(format!("q{i}"), q.clone(), OasisParams::with_min_score(1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Build → persist → load must serve the exact bytes a fresh build
    /// serves, for K ∈ {1, 4} shards, serially and on 4 worker threads,
    /// for BOTH index backends (suffix-tree images and packed ESA
    /// sections). The reference hits come from a fresh tree build, so
    /// this also pins the persisted ESA path to the tree backend's
    /// byte-for-byte output. Sequence lengths start at 0 so empty
    /// sequences ride through the whole persistence pipeline too.
    #[test]
    fn persisted_index_serves_byte_identical_hits(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 0..40), 1..10),
        queries in prop::collection::vec(prop::collection::vec(0u8..4, 1..8), 1..4),
    ) {
        let db = build_db(&seqs);
        let jobs = jobs_for(&queries);
        for k in [1usize, 4] {
            let fresh = ShardedEngine::build(db.clone(), Scoring::unit_dna(), k);
            let want = fresh.with_threads(1).run_batch(&jobs);
            for backend in [IndexBackend::Tree, IndexBackend::Esa] {
                let dir = scratch("roundtrip");
                build_index_artifact(&db, &dir, k, 64, backend).expect("artifact written");
                for threads in [1usize, 4] {
                    let loaded = load_sharded_engine(&dir, Scoring::unit_dna())
                        .expect("artifact loads")
                        .with_threads(threads);
                    prop_assert_eq!(loaded.num_shards() <= k, true);
                    let got = loaded.run_batch(&jobs);
                    prop_assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        prop_assert_eq!(
                            &g.hits, &w.hits,
                            "k={} threads={} backend={}", k, threads, backend.as_str()
                        );
                    }
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn single_shard_artifact_serves_disk_resident_and_identical() {
    let db = build_db(&[
        vec![0, 2, 3, 0, 1, 2, 1, 1, 3, 0, 2],
        vec![3, 0, 1, 1, 2],
        vec![2, 2, 3, 0, 2, 2],
    ]);
    let dir = scratch("diskres");
    let manifest =
        build_index_artifact(&db, &dir, 1, 64, IndexBackend::Tree).expect("artifact written");
    let engine =
        disk_engine_from_artifact(&dir, &manifest, db.clone(), Scoring::unit_dna(), 1 << 16)
            .expect("disk-resident load");
    let q = vec![3u8, 0, 1, 2];
    let params = OasisParams::with_min_score(1);
    let outcome = engine.run_one(&q, &params);
    // Genuinely disk-resident: served through the buffer pool.
    assert!(outcome.pool_delta.total().requests > 0);
    let fresh = ShardedEngine::build(db, Scoring::unit_dna(), 1);
    assert_eq!(outcome.hits, fresh.run_one(&q, &params).hits);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_any_section_is_a_clean_checksum_error() {
    let db = build_db(&[
        vec![0, 2, 3, 0, 1, 2, 1, 1, 3, 0, 2],
        vec![3, 0, 1, 1, 2],
        vec![2, 2, 3, 0, 2, 2],
        vec![1, 1, 1, 1],
    ]);
    // Both section kinds carry their own checksums, so corruption
    // detection must hold for tree images and packed ESA sections alike.
    for backend in [IndexBackend::Tree, IndexBackend::Esa] {
        let dir = scratch("corruption");
        let manifest = build_index_artifact(&db, &dir, 2, 64, backend).expect("artifact written");

        // Every persisted file, corrupted one at a time, must surface as a
        // checksum error from the load path — never as different hits.
        let mut files = vec![dir.join(&manifest.database.file)];
        for i in 0..manifest.shards.len() {
            files.push(manifest.shard_path(&dir, i));
        }
        for file in files {
            let clean = std::fs::read(&file).unwrap();
            let mut bent = clean.clone();
            let mid = bent.len() / 2;
            bent[mid] ^= 0x20;
            std::fs::write(&file, &bent).unwrap();
            let err = load_sharded_engine(&dir, Scoring::unit_dna())
                .err()
                .unwrap_or_else(|| panic!("corruption in {} not detected", file.display()));
            assert!(
                matches!(err, ArtifactError::ChecksumMismatch { .. }),
                "{}: {err}",
                file.display()
            );
            std::fs::write(&file, &clean).unwrap();
        }
        // Intact again: loads fine.
        assert!(load_sharded_engine(&dir, Scoring::unit_dna()).is_ok());

        // The manifest protects itself the same way.
        let mf = dir.join(oasis::storage::MANIFEST_FILE);
        let mut bytes = std::fs::read(&mf).unwrap();
        bytes[9] ^= 0x01;
        std::fs::write(&mf, &bytes).unwrap();
        assert!(matches!(
            load_sharded_engine(&dir, Scoring::unit_dna()),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn loaded_generation_hot_swaps_into_live_serving_without_result_change() {
    let db = build_db(&[
        vec![0, 2, 3, 0, 1, 2, 1, 1, 3, 0, 2],
        vec![3, 0, 1, 1, 2],
        vec![2, 2, 3, 0, 2, 2],
        vec![2, 0, 3, 3, 0, 1, 0],
    ]);
    let dir = scratch("hotswap");
    // The published generation comes from a packed-ESA artifact while the
    // cold build is a suffix tree: the catalog swap must be invisible
    // across index substrates, not just across generations.
    build_index_artifact(&db, &dir, 3, 64, IndexBackend::Esa).expect("artifact written");

    let serving = ServingEngine::new(
        IndexCatalog::new(
            "cold build",
            ShardedEngine::build(db.clone(), Scoring::unit_dna(), 2),
        ),
        ServingConfig {
            workers: 2,
            queue_capacity: 64,
        },
    )
    .expect("valid serving config");

    let job = |round: usize| {
        BatchQuery::named(
            format!("q{round}"),
            vec![3, 0, 1, 2],
            OasisParams::with_min_score(1),
        )
    };
    let before = serving
        .try_submit(job(0))
        .expect("admitted")
        .wait()
        .expect("served");

    // Load a generation from the artifact and publish it mid-traffic.
    let loaded = load_sharded_engine(&dir, Scoring::unit_dna()).expect("artifact loads");
    let tickets: Vec<QueryTicket> = (1..=16)
        .map(|round| serving.try_submit(job(round)).expect("admitted"))
        .collect();
    serving
        .executor()
        .publish("loaded from artifact", loaded)
        .expect("publish");
    let after = serving
        .try_submit(job(99))
        .expect("admission stays open across the swap")
        .wait()
        .expect("served");

    for ticket in tickets {
        let served = ticket.wait().expect("in-flight work drains");
        assert_eq!(served.outcome.hits, before.outcome.hits);
    }
    assert_eq!(after.outcome.hits, before.outcome.hits);
    assert_eq!(serving.stats().rejected, 0);
    assert_eq!(
        serving.executor().current_info().label,
        "loaded from artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}
