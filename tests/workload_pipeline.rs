//! End-to-end pipeline tests on generated workloads: the full stack
//! (generation → indexing → disk serialization → all three engines) for
//! both alphabets, including the affine-gap extension mode.

use oasis::prelude::*;

#[test]
fn protein_pipeline_end_to_end() {
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let db = &workload.db;
    let tree = SuffixTree::build(db);
    let scoring = Scoring::pam30_protein();
    let karlin =
        KarlinParams::estimate(&scoring.matrix, &oasis::align::stats::background_protein())
            .unwrap();
    let queries = generate_queries(&workload, &QuerySpec::proclass_like(10, 21));
    for q in &queries {
        let min = karlin.min_score_for_evalue(q.len() as u64, db.total_residues(), 20_000.0);
        let params = OasisParams::with_min_score(min);
        let (hits, stats) = OasisSearch::new(&tree, db, q, &scoring, &params).run();
        let sw = SwScanner::new().scan(db, q, &scoring, min);
        let mut a: Vec<_> = hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        let mut b: Vec<_> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        b.sort_unstable();
        assert_eq!(a, b);
        // On a tiny database the E=20000 threshold is weak, so no useful
        // bound holds on column counts — just check instrumentation ticks.
        assert!(stats.columns_expanded > 0);
    }
}

#[test]
fn dna_pipeline_end_to_end() {
    let workload = generate_dna(&DnaDbSpec::tiny());
    let db = &workload.db;
    let tree = SuffixTree::build(db);
    let scoring = Scoring::unit_dna();
    let queries = generate_queries(&workload, &QuerySpec::fixed(16, 5, 3));
    for q in &queries {
        let params = OasisParams::with_min_score(9);
        let (hits, _) = OasisSearch::new(&tree, db, q, &scoring, &params).run();
        let sw = SwScanner::new().scan(db, q, &scoring, 9);
        let mut a: Vec<_> = hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        let mut b: Vec<_> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn affine_gap_pipeline() {
    // The paper's future-work extension, exercised end to end.
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let db = &workload.db;
    let tree = SuffixTree::build(db);
    let scoring = Scoring::new(SubstitutionMatrix::blosum62(), GapModel::affine(-11, -1));
    let queries = generate_queries(&workload, &QuerySpec::fixed(18, 6, 17));
    for q in &queries {
        let params = OasisParams::with_min_score(30);
        let (hits, _) = OasisSearch::new(&tree, db, q, &scoring, &params).run();
        let sw = SwScanner::new().scan(db, q, &scoring, 30);
        let mut a: Vec<_> = hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        let mut b: Vec<_> = sw.iter().map(|h| (h.seq, h.hit.score)).collect();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }
}

#[test]
fn disk_pipeline_on_generated_workload() {
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let db = &workload.db;
    let tree = SuffixTree::build(db);
    let (image, stats) = DiskTreeBuilder::default().build_image(&tree);
    assert!(stats.bytes_per_symbol() > 4.0 && stats.bytes_per_symbol() < 40.0);
    let disk = DiskSuffixTree::open_image(image, 2048, 64 * 1024).unwrap();
    let scoring = Scoring::pam30_protein();
    let queries = generate_queries(&workload, &QuerySpec::fixed(12, 4, 9));
    for q in &queries {
        let params = OasisParams::with_min_score(25);
        let (mem_hits, _) = OasisSearch::new(&tree, db, q, &scoring, &params).run();
        let (disk_hits, _) = OasisSearch::new(&disk, db, q, &scoring, &params).run();
        let mut a: Vec<_> = mem_hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        let mut b: Vec<_> = disk_hits.iter().map(|h| (h.seq, h.score)).collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn fasta_roundtrip_preserves_search_results() {
    // Export the workload as FASTA, reparse, and get identical results.
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let db = &workload.db;
    let alphabet = Alphabet::protein();
    let seqs: Vec<Sequence> = db
        .sequences()
        .map(|v| Sequence::from_codes(v.name.to_string(), v.codes.to_vec()))
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &alphabet, &seqs).unwrap();
    let parsed = parse_fasta(&fasta[..], &alphabet, UnknownResiduePolicy::Reject).unwrap();
    let mut builder = DatabaseBuilder::new(alphabet);
    for s in parsed {
        builder.push(s).unwrap();
    }
    let db2 = builder.finish();
    assert_eq!(db.text(), db2.text());

    let tree2 = SuffixTree::build(&db2);
    let scoring = Scoring::pam30_protein();
    let q = generate_queries(&workload, &QuerySpec::fixed(14, 1, 2))
        .pop()
        .unwrap();
    let params = OasisParams::with_min_score(25);
    let tree = SuffixTree::build(db);
    let (a, _) = OasisSearch::new(&tree, db, &q, &scoring, &params).run();
    let (b, _) = OasisSearch::new(&tree2, &db2, &q, &scoring, &params).run();
    assert_eq!(a, b);
}
