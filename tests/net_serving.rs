//! The network serving subsystem end to end, against the public API:
//!
//! * remote hits are byte-identical to the local engine's output —
//!   including hit order — for serial and concurrent clients;
//! * `Busy` backpressure surfaces on the wire when the admission queue
//!   is full, and the connection stays usable;
//! * per-request deadlines answer `DeadlineExceeded` without killing the
//!   worker;
//! * `reload` hot-swaps an index generation while clients are mid-stream
//!   without corrupting a single response;
//! * graceful shutdown stops admission, drains admitted work, and closes
//!   idle streams with the typed terminal frame;
//! * malformed bytes on the wire get a typed `Malformed` error, not a
//!   hung or poisoned server.

use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use oasis::prelude::*;

fn dna_db(seqs: &[&str]) -> Arc<SequenceDatabase> {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, s) in seqs.iter().enumerate() {
        b.push_str(format!("s{i}"), s).unwrap();
    }
    Arc::new(b.finish())
}

const SEQS: &[&str] = &[
    "AGTACGCCTAG",
    "TACCG",
    "GGTAGG",
    "CCCCCC",
    "GATTACA",
    "TACGTACG",
    "ACGTACGTGT",
];

const QUERIES: &[&str] = &["TACG", "GATT", "CC", "GGTAGG", "ACGT", "TAC"];

/// Start a server over a `ShardedEngine` for `db`; returns the address,
/// the shutdown handle, and the join handle of the accept loop.
fn start_server(
    db: &Arc<SequenceDatabase>,
    shards: usize,
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let scoring = Scoring::unit_dna();
    let engine = oasis::engine::ShardedEngine::build(db.clone(), scoring.clone(), shards);
    let index = ServedIndex::new(db.clone(), Box::new(engine));
    let server = OasisServer::bind("127.0.0.1:0", index, scoring, config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

/// The local reference outcome for `query` at `min`.
fn local_hits(db: &Arc<SequenceDatabase>, query: &str, min: Score) -> Vec<Hit> {
    let engine = oasis::engine::ShardedEngine::build(db.clone(), Scoring::unit_dna(), 1);
    let encoded = Alphabet::dna().encode_str(query).unwrap();
    engine
        .run_one(&encoded, &OasisParams::with_min_score(min))
        .hits
}

fn assert_identical_response(
    db: &Arc<SequenceDatabase>,
    hits: &[RemoteHit],
    query: &str,
    min: Score,
) {
    let want = local_hits(db, query, min);
    assert_eq!(
        hits.len(),
        want.len(),
        "remote hit count for {query} at min {min}"
    );
    for (got, local) in hits.iter().zip(&want) {
        assert_eq!(got.hit(), *local, "hit mismatch for {query} at min {min}");
        assert_eq!(got.name, db.name(local.seq), "name mismatch for {query}");
    }
}

#[test]
fn remote_hits_byte_identical_to_local_for_serial_and_concurrent_clients() {
    let db = dna_db(SEQS);
    let (addr, handle, runner) = start_server(&db, 3, ServerConfig::default());

    // Serial: one client, every query, several thresholds, in order.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.hello().protocol, PROTOCOL_VERSION);
    assert_eq!(client.hello().generation, 0);
    assert_eq!(client.hello().num_seqs, db.num_sequences());
    assert_eq!(client.hello().total_residues, db.total_residues());
    for query in QUERIES {
        for min in 1..=3 {
            let (hits, done) = client
                .search_collect(SearchRequest::new(*query).with_min_score(min))
                .expect("remote search");
            assert_eq!(done.hits as usize, hits.len());
            assert_eq!(done.min_score, min);
            assert_eq!(done.generation, 0);
            assert_identical_response(&db, &hits, query, min);
        }
    }
    // Top-k returns exactly the serial prefix.
    let (top2, _) = client
        .search_collect(SearchRequest::new("TACG").with_min_score(1).with_top(2))
        .expect("top-k search");
    let full = local_hits(&db, "TACG", 1);
    assert_eq!(top2.len(), 2.min(full.len()));
    for (got, want) in top2.iter().zip(&full) {
        assert_eq!(got.hit(), *want);
    }

    // Concurrent: four clients hammering their own connections.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    for (qi, query) in QUERIES.iter().enumerate() {
                        let min = 1 + ((w + qi + round) % 3) as Score;
                        let (hits, _) = client
                            .search_collect(SearchRequest::new(*query).with_min_score(min))
                            .expect("remote search");
                        assert_identical_response(&db, &hits, query, min);
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("concurrent client");
    }

    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
    drop(handle);
}

/// A gated executor: every query parks until the test releases it, and
/// signals the test when it starts executing.
struct Gate {
    started: mpsc::Sender<()>,
    release: Mutex<mpsc::Receiver<()>>,
}

impl QueryExecutor for Gate {
    fn execute(&self, _job: &oasis::engine::BatchQuery) -> oasis::engine::SearchOutcome {
        self.started.send(()).ok();
        self.release.lock().unwrap().recv().unwrap();
        oasis::engine::SearchOutcome {
            hits: Vec::new(),
            stats: SearchStats::default(),
            pool_delta: PoolStatsSnapshot::default(),
        }
    }
}

#[test]
fn busy_backpressure_surfaces_on_the_wire_when_the_queue_is_full() {
    let db = dna_db(&["ACGTACGT"]);
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let index = ServedIndex::new(
        db,
        Box::new(Gate {
            started: started_tx,
            release: Mutex::new(release_rx),
        }),
    );
    let server = OasisServer::bind(
        "127.0.0.1:0",
        index,
        Scoring::unit_dna(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    // Client A's query occupies the single worker…
    let a = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect a");
        client
            .search_collect(SearchRequest::new("ACGT").with_min_score(1))
            .expect("a completes")
    });
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("a reached the worker");
    // …client B's fills the queue (capacity 1)…
    let b = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect b");
        client
            .search_collect(SearchRequest::new("ACGT").with_min_score(1))
            .expect("b completes")
    });
    // Wait until B's submission is actually queued before C submits.
    let mut admin = Client::connect(addr).expect("connect admin");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while admin.stats().expect("stats").queue_depth < 1 {
        assert!(std::time::Instant::now() < deadline, "b never queued");
        std::thread::sleep(Duration::from_millis(10));
    }
    // …so client C must be rejected with Busy — not blocked, not hung.
    let mut c = Client::connect(addr).expect("connect c");
    match c.search_collect(SearchRequest::new("ACGT").with_min_score(1)) {
        Err(NetError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Busy, "{e:?}");
            assert!(e.message.contains("queue full"), "{}", e.message);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // The connection survives a Busy rejection: stats still answer.
    let stats = admin.stats().expect("stats after busy");
    assert!(stats.rejected >= 1, "rejection counted: {stats:?}");

    // Release both gated queries; A and B complete with clean responses.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap();
    let (hits_a, _) = a.join().expect("a thread");
    let (hits_b, _) = b.join().expect("b thread");
    assert!(hits_a.is_empty() && hits_b.is_empty());
    // And C's connection is still usable for a successful retry (which
    // runs through the gate too, so pre-release it).
    release_tx.send(()).unwrap();
    let (hits_c, _) = c
        .search_collect(SearchRequest::new("ACGT").with_min_score(1))
        .expect("c retries fine");
    assert!(hits_c.is_empty());

    admin.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
}

#[test]
fn deadline_exceeded_is_typed_and_the_server_keeps_serving() {
    let db = dna_db(&["ACGTACGT"]);
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let index = ServedIndex::new(
        db,
        Box::new(Gate {
            started: started_tx,
            release: Mutex::new(release_rx),
        }),
    );
    let server = OasisServer::bind(
        "127.0.0.1:0",
        index,
        Scoring::unit_dna(),
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    match client.search_collect(
        SearchRequest::new("ACGT")
            .with_min_score(1)
            .with_deadline_ms(50),
    ) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::DeadlineExceeded, "{e:?}"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("query reached the worker");
    // The abandoned query still completes server-side (admitted work is
    // never cancelled) and the same connection serves the next request.
    release_tx.send(()).unwrap();
    release_tx.send(()).unwrap(); // for the retry below
    let (hits, done) = client
        .search_collect(SearchRequest::new("ACGT").with_min_score(1))
        .expect("connection still serves");
    assert!(hits.is_empty());
    assert_eq!(done.hits, 0);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reload_hot_swaps_a_generation_under_live_streaming_clients() {
    let db = dna_db(SEQS);
    let dir_a = tmpdir("gen-a");
    let dir_b = tmpdir("gen-b");
    // Two artifacts over the same database with different shard layouts:
    // results must be byte-identical across the swap, so any corruption a
    // racing reload could cause is observable.
    oasis::engine::build_index_artifact(&db, &dir_a, 2, 64, oasis::engine::IndexBackend::Tree)
        .expect("artifact a");
    // Generation B uses the packed-ESA backend: the hot swap must also be
    // invisible across index substrates.
    oasis::engine::build_index_artifact(&db, &dir_b, 3, 64, oasis::engine::IndexBackend::Esa)
        .expect("artifact b");

    let scoring = Scoring::unit_dna();
    let index = ServedIndex::from_artifact(&dir_a, scoring.clone(), 1 << 20).expect("load a");
    let server = OasisServer::bind(
        "127.0.0.1:0",
        index,
        scoring,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let generations_seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let clients: Vec<_> = (0..3)
        .map(|w| {
            let db = db.clone();
            let stop = stop.clone();
            let generations_seen = generations_seen.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rounds = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || rounds < 10 {
                    for (qi, query) in QUERIES.iter().enumerate() {
                        let min = 1 + ((w + qi) % 3) as Score;
                        let (hits, done) = client
                            .search_collect(SearchRequest::new(*query).with_min_score(min))
                            .expect("remote search during reload");
                        // Mid-swap responses must stay exactly correct.
                        assert_identical_response(&db, &hits, query, min);
                        generations_seen.lock().unwrap().insert(done.generation);
                    }
                    rounds += 1;
                }
            })
        })
        .collect();

    // Let the clients run, then hot-swap generations twice mid-traffic.
    std::thread::sleep(Duration::from_millis(100));
    let mut admin = Client::connect(addr).expect("connect admin");
    let done = admin
        .reload(dir_b.to_string_lossy().to_string())
        .expect("reload to b");
    assert_eq!(done.generation, 1);
    std::thread::sleep(Duration::from_millis(100));
    let done = admin
        .reload(dir_a.to_string_lossy().to_string())
        .expect("reload back to a");
    assert_eq!(done.generation, 2);

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for client in clients {
        client.join().expect("streaming client");
    }
    // The swap really happened under traffic: responses were served by
    // more than one generation.
    assert!(
        generations_seen.lock().unwrap().len() >= 2,
        "expected responses from multiple generations, saw {:?}",
        generations_seen.lock().unwrap()
    );
    // A fresh client's handshake reports the latest generation.
    let client = Client::connect(addr).expect("connect post-swap");
    assert_eq!(client.hello().generation, 2);

    // Reloading garbage is a typed error, not a swap.
    let missing = tmpdir("gen-missing");
    match admin.reload(missing.to_string_lossy().to_string()) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::Internal, "{e:?}"),
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(admin.stats().expect("stats").generation, 2);

    admin.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn graceful_shutdown_stops_admission_drains_work_and_sends_terminal_frames() {
    let db = dna_db(SEQS);
    let (addr, handle, runner) = start_server(&db, 2, ServerConfig::default());

    // An idle client sits connected; shutdown must close its stream with
    // the typed terminal frame rather than a bare EOF.
    let mut idle = Client::connect(addr).expect("connect idle");
    handle.shutdown();
    runner.join().expect("accept loop").expect("run ok");
    match idle.search_collect(SearchRequest::new("TACG").with_min_score(1)) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown, "{e:?}"),
        // The terminal frame may already have been read as the response
        // to nothing; either way the error is the typed shutdown, or the
        // socket is gone entirely (server exited after the frame).
        Err(NetError::Io(_)) => {}
        other => panic!("expected ShuttingDown or EOF, got {other:?}"),
    }
    // New connections are refused or answered with the terminal frame.
    match Client::connect(addr) {
        Ok(_) => panic!("connect must fail after shutdown"),
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        Err(_) => {} // refused outright: listener is gone
    }
}

#[test]
fn malformed_bytes_get_a_typed_error_and_unknown_residues_are_rejected() {
    use std::io::Write;

    let db = dna_db(SEQS);
    let (addr, handle, runner) = start_server(&db, 1, ServerConfig::default());

    // Raw garbage after the handshake → typed Malformed error frame.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("raw connect");
        match oasis::net::read_frame(&mut stream).expect("hello") {
            oasis::net::Frame::Hello(h) => assert_eq!(h.protocol, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        // An absurd declared length: 5-byte header claiming 4 GB.
        stream
            .write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x02])
            .expect("write garbage");
        match oasis::net::read_frame(&mut stream) {
            Ok(oasis::net::Frame::Error(e)) => assert_eq!(e.code, ErrorCode::Malformed, "{e:?}"),
            other => panic!("expected Malformed error frame, got {other:?}"),
        }
    }

    // A query with residues outside the serving alphabet → Malformed,
    // and the connection keeps serving.
    let mut client = Client::connect(addr).expect("connect");
    match client.search_collect(SearchRequest::new("TACX!").with_min_score(1)) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::Malformed, "{e:?}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // An invalid minScore → Malformed too.
    match client.search_collect(SearchRequest::new("TACG").with_min_score(0)) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::Malformed, "{e:?}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    let (hits, _) = client
        .search_collect(SearchRequest::new("TACG").with_min_score(2))
        .expect("still serving");
    assert_identical_response(&db, &hits, "TACG", 2);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
    drop(handle);
}

/// The base database plus named appended sequences, for reference
/// engines that must agree with the server's layered generations.
fn db_with_appended(extra: &[(&str, &str)]) -> Arc<SequenceDatabase> {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, s) in SEQS.iter().enumerate() {
        b.push_str(format!("s{i}"), s).unwrap();
    }
    for (name, s) in extra {
        b.push_str(name.to_string(), s).unwrap();
    }
    Arc::new(b.finish())
}

/// Start a live-ingestion server over a fresh artifact built from the
/// base database at `dir`.
fn start_live_server(
    dir: &PathBuf,
    compact_after: usize,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let db = dna_db(SEQS);
    oasis::engine::build_index_artifact(&db, dir, 2, 64, oasis::engine::IndexBackend::Tree)
        .expect("base artifact");
    let scoring = Scoring::unit_dna();
    let index = ServedIndex::from_artifact(dir, scoring.clone(), 1 << 20).expect("load base");
    let server = OasisServer::bind(
        "127.0.0.1:0",
        index,
        scoring,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            compact_after,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    server.set_live_dir(dir).expect("live dir");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

const ADD1: &[(&str, &str)] = &[("a0", "ACCGGA"), ("a1", "TTGACA")];
const ADD2: &[(&str, &str)] = &[("a2", "CGCGTT"), ("a3", "AGGATTAC")];

fn fasta_for(records: &[(&str, &str)]) -> String {
    records
        .iter()
        .map(|(name, s)| format!(">{name}\n{s}\n"))
        .collect()
}

#[test]
fn appends_and_background_compaction_publish_with_zero_downtime() {
    let dir = tmpdir("live-traffic");
    let (addr, _handle, runner) = start_live_server(&dir, 3);

    // The database each generation serves, keyed by the deterministic
    // publication order: 0 = base, 1 = base + ADD1, 2 = base + both
    // appends, 3 = the compacted base over the same content as 2.
    let db0 = dna_db(SEQS);
    let db1 = db_with_appended(ADD1);
    let db2 = db_with_appended(&[ADD1, ADD2].concat());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let generations_seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let clients: Vec<_> = (0..3)
        .map(|w| {
            let (db0, db1, db2) = (db0.clone(), db1.clone(), db2.clone());
            let stop = stop.clone();
            let generations_seen = generations_seen.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rounds = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || rounds < 10 {
                    for (qi, query) in QUERIES.iter().enumerate() {
                        let min = 1 + ((w + qi) % 3) as Score;
                        // Zero downtime: not one failed or blocked query
                        // while appends and a compaction publish.
                        let (hits, done) = client
                            .search_collect(SearchRequest::new(*query).with_min_score(min))
                            .expect("remote search during live ingestion");
                        let reference = match done.generation {
                            0 => &db0,
                            1 => &db1,
                            _ => &db2,
                        };
                        assert_identical_response(reference, &hits, query, min);
                        generations_seen.lock().unwrap().insert(done.generation);
                    }
                    rounds += 1;
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let mut admin = Client::connect(addr).expect("connect admin");

    // First append: below the compaction threshold, publishes the
    // layered (base + delta) generation.
    let done = admin.append(fasta_for(ADD1)).expect("append 1");
    assert_eq!(done.appended_seqs, 2);
    assert_eq!(done.delta_seqs, 2);
    assert_eq!(done.generation, 1);
    std::thread::sleep(Duration::from_millis(100));

    // Second append crosses the threshold and kicks the background
    // compaction, which publishes generation 3 when the fold lands.
    let done = admin.append(fasta_for(ADD2)).expect("append 2");
    assert_eq!(done.delta_seqs, 4);
    assert_eq!(done.generation, 2);

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = admin.stats().expect("stats during compaction");
        if stats.compactions >= 1 {
            assert_eq!(stats.delta_seqs, 0, "delta folded into the base");
            assert_eq!(stats.generation, 3);
            assert_eq!(stats.generation_label, "live-compaction");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "compaction never ran");
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for client in clients {
        client.join().expect("streaming client");
    }
    assert!(
        generations_seen.lock().unwrap().contains(&0),
        "traffic started on the base generation"
    );

    // A fresh handshake serves the compacted generation and its geometry.
    let client = Client::connect(addr).expect("connect post-compaction");
    assert_eq!(client.hello().generation, 3);
    assert_eq!(client.hello().num_seqs, db2.num_sequences());

    admin.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");

    // The on-disk artifact is the compacted base: lineage recorded, log
    // truncated, nothing pending.
    let manifest = read_manifest(&dir).expect("manifest");
    assert_eq!(manifest.num_seqs, db2.num_sequences());
    let lineage = manifest.lineage.expect("lineage recorded");
    assert_eq!(lineage.compactions, 1);
    assert_eq!(lineage.appended_seqs, 4);
    assert_eq!(lineage.folded_through, 3);
    let replay = replay_wal(&dir).expect("replay").expect("wal exists");
    assert!(replay.records.is_empty(), "log truncated after publish");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_compaction_racing_admin_reload_keeps_every_generation_sound() {
    let dir = tmpdir("race-reload-live");
    let dir_b = tmpdir("race-reload-b");
    let (addr, _handle, runner) = start_live_server(&dir, 3);
    let db_base = dna_db(SEQS);
    oasis::engine::build_index_artifact(&db_base, &dir_b, 3, 64, oasis::engine::IndexBackend::Esa)
        .expect("artifact b");

    let mut admin = Client::connect(addr).expect("connect admin");
    // One append crosses the threshold: generation 1 publishes and the
    // background compaction starts folding…
    let extra = [ADD1, ADD2].concat();
    let done = admin.append(fasta_for(&extra)).expect("append");
    assert_eq!(done.generation, 1);
    // …while an admin reload races it into the catalog. Publication
    // order between generations 2 and 3 is whatever the race decides.
    let reloaded = admin
        .reload(dir_b.to_string_lossy().to_string())
        .expect("reload during compaction");
    assert!(reloaded.generation == 2 || reloaded.generation == 3);

    // The compaction completes regardless of who published last.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while admin.stats().expect("stats").compactions < 1 {
        assert!(std::time::Instant::now() < deadline, "compaction never ran");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Whichever generation won the race serves; its responses must be
    // byte-identical to the database that generation indexes.
    let stats = admin.stats().expect("stats after race");
    assert_eq!(stats.generation, 3, "both publications landed");
    let db_full = db_with_appended(&extra);
    let reference = if stats.generation_label == "live-compaction" {
        &db_full
    } else {
        &db_base // the reload's artifact has only the base sequences
    };
    let mut client = Client::connect(addr).expect("connect");
    for query in QUERIES {
        let (hits, _) = client
            .search_collect(SearchRequest::new(*query).with_min_score(2))
            .expect("search after race");
        assert_identical_response(reference, &hits, query, 2);
    }

    admin.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");

    // The live directory's fold completed independently of the catalog
    // race: lineage recorded, WAL truncated.
    let manifest = read_manifest(&dir).expect("manifest");
    assert_eq!(manifest.num_seqs, db_full.num_sequences());
    assert_eq!(manifest.lineage.expect("lineage").compactions, 1);
    assert!(replay_wal(&dir)
        .expect("replay")
        .expect("wal exists")
        .records
        .is_empty());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn background_compaction_racing_shutdown_loses_nothing() {
    let dir = tmpdir("race-shutdown");
    let (addr, handle, runner) = start_live_server(&dir, 3);

    let mut admin = Client::connect(addr).expect("connect admin");
    let extra = [ADD1, ADD2].concat();
    let done = admin.append(fasta_for(&extra)).expect("append");
    assert_eq!(done.appended_seqs, 4);
    // Shut down immediately: the background compaction is somewhere
    // between freeze, fold, publish, and truncate. If its publish loses
    // the race to shutdown, compaction aborts and the WAL keeps the
    // records; if it wins, the fold landed and the WAL is truncated.
    // Either way `run()` joins the compaction thread before returning,
    // so no file operation is torn by process exit.
    handle.shutdown();
    runner.join().expect("accept loop").expect("run ok");

    let db_full = db_with_appended(&extra);
    let manifest = read_manifest(&dir).expect("manifest");
    let replay = replay_wal(&dir).expect("replay").expect("wal exists");
    assert!(!replay.torn_tail, "no write was torn by the shutdown");
    // Base sequences folded in plus records still pending in the log
    // must account for every acknowledged append, exactly once.
    let floor = manifest.lineage.as_ref().map(|l| l.folded_through);
    let pending = replay
        .records
        .iter()
        .filter(|r| floor.is_none_or(|f| r.seq_no > f))
        .count();
    assert_eq!(
        manifest.num_seqs as usize + pending,
        db_full.num_sequences() as usize,
        "folded + pending covers each append exactly once (manifest {}, pending {pending})",
        manifest.num_seqs
    );

    // A reopen — the restart after the shutdown — serves the full set,
    // byte-identical to a fresh build over everything.
    let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
        .expect("reopen after shutdown race");
    assert_eq!(
        manifest.num_seqs + live.stats().delta_seqs,
        db_full.num_sequences()
    );
    let snapshot = live.snapshot();
    let reference = oasis::engine::ShardedEngine::build(db_full.clone(), Scoring::unit_dna(), 1);
    for query in QUERIES {
        let encoded = Alphabet::dna().encode_str(query).unwrap();
        let params = OasisParams::with_min_score(1);
        assert_eq!(
            snapshot.engine().run_one(&encoded, &params).hits,
            reference.run_one(&encoded, &params).hits,
            "query {query} after the shutdown race"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evalue_rule_matches_the_local_conversion() {
    // The server derives minScore from an E-value exactly like the local
    // CLI: same Karlin estimate, same database statistics.
    let db = dna_db(SEQS);
    let (addr, _handle, runner) = start_server(&db, 2, ServerConfig::default());

    let scoring = Scoring::unit_dna();
    let karlin = KarlinParams::estimate(&scoring.matrix, &oasis::align::background_dna())
        .expect("dna statistics");
    let mut client = Client::connect(addr).expect("connect");
    for (query, evalue) in [("TACGTACG", 1.0), ("GATTACA", 0.5)] {
        let encoded = Alphabet::dna().encode_str(query).unwrap();
        let want_min =
            karlin.min_score_for_evalue(encoded.len() as u64, db.total_residues(), evalue);
        let (hits, done) = client
            .search_collect(SearchRequest::new(query).with_evalue(evalue))
            .expect("evalue search");
        assert_eq!(done.min_score, want_min, "server-side Equation 3");
        if want_min >= 1 {
            assert_identical_response(&db, &hits, query, want_min);
        }
    }
    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
}

/// Read one full search response (hits then a terminal Done or Error)
/// from a raw pipelined stream.
fn read_response(
    stream: &mut std::net::TcpStream,
) -> Result<(Vec<RemoteHit>, SearchDone), ErrorFrame> {
    let mut hits = Vec::new();
    loop {
        match oasis::net::read_frame(stream).expect("response frame") {
            Frame::Hit(hit) => hits.push(hit),
            Frame::Done(done) => return Ok((hits, done)),
            Frame::Error(e) => return Err(e),
            other => panic!("unexpected {} frame in a search response", other.kind()),
        }
    }
}

#[test]
fn pipelined_requests_answer_in_order_and_survive_a_malformed_one() {
    use std::io::Write;

    let db = dna_db(SEQS);
    let (addr, _handle, runner) = start_server(&db, 2, ServerConfig::default());

    let mut stream = std::net::TcpStream::connect(addr).expect("raw connect");
    match oasis::net::read_frame(&mut stream).expect("hello") {
        Frame::Hello(h) => assert_eq!(h.protocol, PROTOCOL_VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }

    // Three valid searches and one malformed request (minScore 0),
    // written back-to-back before reading a single response byte. The
    // malformed one sits mid-pipeline: the requests around it must
    // still answer, in request order.
    let requests = [
        ("TACG", 1),
        ("GATT", 2),
        ("ACGT", 0), // invalid threshold → typed Malformed
        ("GGTAGG", 1),
    ];
    let mut batch = Vec::new();
    for (query, min) in requests {
        oasis::net::write_frame(
            &mut batch,
            &Frame::Search(SearchRequest::new(query).with_min_score(min)),
        )
        .expect("encode request");
    }
    stream.write_all(&batch).expect("write pipeline");

    for (query, min) in requests {
        match read_response(&mut stream) {
            Ok((hits, done)) => {
                assert!(min >= 1, "malformed request must not get a Done frame");
                assert_eq!(
                    done.min_score, min,
                    "responses must come back in request order"
                );
                assert_eq!(done.hits as usize, hits.len());
                assert_identical_response(&db, &hits, query, min);
            }
            Err(e) => {
                assert_eq!(min, 0, "valid request {query} got an error: {e:?}");
                assert_eq!(e.code, ErrorCode::Malformed, "{e:?}");
            }
        }
    }

    // The connection survived the mid-pipeline error: it still serves.
    oasis::net::write_frame(
        &mut stream,
        &Frame::Search(SearchRequest::new("TAC").with_min_score(1)),
    )
    .expect("follow-up request");
    let (hits, _) = read_response(&mut stream).expect("follow-up response");
    assert_identical_response(&db, &hits, "TAC", 1);
    drop(stream);

    // A pipelined client and a plain client agree byte for byte.
    let mut client = Client::connect(addr).expect("connect");
    let (hits, _) = client
        .search_collect(SearchRequest::new("TACG").with_min_score(1))
        .expect("plain search");
    assert_identical_response(&db, &hits, "TACG", 1);

    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
}

#[test]
fn result_cache_hits_repeated_queries_but_never_serves_a_stale_generation() {
    let dir = tmpdir("cache-hot-swap");
    let (addr, _handle, runner) = start_live_server(&dir, 0);

    let mut client = Client::connect(addr).expect("connect");

    // Generation 0: the same query twice. The second run is answerable
    // from the cache; both must match the local reference exactly.
    let base = dna_db(SEQS);
    for _ in 0..2 {
        let (hits, done) = client
            .search_collect(SearchRequest::new("TACG").with_min_score(1))
            .expect("gen-0 search");
        assert_eq!(done.generation, 0);
        assert_identical_response(&base, &hits, "TACG", 1);
    }
    let warm = client.metrics().expect("metrics");
    assert!(
        warm.cache_hits >= 1,
        "repeated identical query must hit the cache (hits={}, misses={})",
        warm.cache_hits,
        warm.cache_misses
    );
    assert!(warm.cache_entries >= 1);

    // Hot-swap: append a sequence that adds hits for the same query. The
    // cached generation-0 entry must NOT answer for generation 1 — the
    // response has to include the appended match.
    client
        .append(fasta_for(&[("a0", "GGTACGGA")]))
        .expect("append");
    let swapped = db_with_appended(&[("a0", "GGTACGGA")]);
    assert!(
        local_hits(&swapped, "TACG", 1).len() > local_hits(&base, "TACG", 1).len(),
        "the appended sequence must add a TACG hit for this test to bite"
    );
    for _ in 0..2 {
        let (hits, done) = client
            .search_collect(SearchRequest::new("TACG").with_min_score(1))
            .expect("gen-1 search");
        assert_eq!(
            done.generation, 1,
            "post-append searches serve the new generation"
        );
        assert_identical_response(&swapped, &hits, "TACG", 1);
    }

    // The swap created fresh traffic for generation 1 and the repeat was
    // cacheable again under the new key.
    let after = client.metrics().expect("metrics after swap");
    assert!(
        after.cache_misses > warm.cache_misses,
        "gen-1 first run must miss"
    );
    assert!(after.cache_hits > warm.cache_hits, "gen-1 repeat must hit");
    assert!(
        after
            .per_generation
            .iter()
            .any(|g| g.generation == 1 && g.served >= 2),
        "per-generation counters must follow the swap: {:?}",
        after.per_generation
    );

    client.shutdown_server().expect("shutdown");
    runner.join().expect("accept loop").expect("run ok");
    let _ = std::fs::remove_dir_all(&dir);
}
