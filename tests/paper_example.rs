//! End-to-end reproduction of every worked example in the paper:
//! Table 1 (unit matrix), Table 2 (the S-W matrix), Figure 2 (the suffix
//! tree of AGTACGCCTAG), §2.3.1 (exact matching), and the §3.3 OASIS
//! walkthrough (query TACG, minScore 1).

use oasis::prelude::*;

fn figure2_db() -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    b.push_str("paper", "AGTACGCCTAG").unwrap();
    b.finish()
}

fn dna(s: &str) -> Vec<u8> {
    Alphabet::dna().encode_str(s).unwrap()
}

#[test]
fn table1_unit_matrix() {
    let m = SubstitutionMatrix::unit(oasis::bioseq::AlphabetKind::Dna);
    // "scores of 1 for exact matches, and -1 otherwise"
    for a in 0..4u8 {
        for b in 0..4u8 {
            assert_eq!(m.score(a, b), if a == b { 1 } else { -1 });
        }
    }
}

#[test]
fn table2_smith_waterman() {
    // "consider a query q = TACG against a target t = AGTACGCCTAG …
    //  the bold score entry indicates the maximum score alignment …
    //  TACG -> TACG, which has a score of 4."
    let scoring = Scoring::unit_dna();
    let q = dna("TACG");
    let t = dna("AGTACGCCTAG");
    let mat = oasis::align::sw::sw_full_matrix(&q, &t, &scoring);
    assert_eq!(mat[4][6], 4, "the bold maximum cell");
    let aln = oasis::align::sw_align(&q, &t, &scoring).unwrap();
    assert_eq!(aln.score, 4);
    assert_eq!((aln.t_start, aln.t_end), (2, 6));
    assert_eq!(aln.cigar(), "4R");
}

#[test]
fn figure2_suffix_tree() {
    let db = figure2_db();
    let tree = SuffixTree::build(&db);
    // 11 leaves, root + 5 branching nodes (paper labels them 0N-5N).
    assert_eq!(tree.num_leaves(), 11);
    assert_eq!(SuffixTreeAccess::num_internal(&tree), 6);
    // path(8L) = TAG$ (the paper's example path).
    let alpha = Alphabet::dna();
    assert_eq!(
        alpha.decode_all(&tree.path_label(NodeHandle::leaf(8))),
        "TAG$"
    );
}

#[test]
fn section_231_exact_match() {
    // "consider the query TACG … this substring is present in the target
    //  sequence, beginning at position 2."
    let db = figure2_db();
    let tree = SuffixTree::build(&db);
    assert_eq!(oasis::suffix::occurrences(&tree, &dna("TACG")), vec![2]);
    assert!(oasis::suffix::find_exact(&tree, &dna("TACT")).is_none());
}

#[test]
fn section_33_walkthrough_end_to_end() {
    // Full OASIS run: query TACG, minScore 1 — the strongest alignment is
    // TACG at position 2 with score 4, reported first.
    let db = figure2_db();
    let tree = SuffixTree::build(&db);
    let scoring = Scoring::unit_dna();
    let q = dna("TACG");
    let params = OasisParams::with_min_score(1);
    let (hits, stats) = OasisSearch::new(&tree, &db, &q, &scoring, &params).run();
    assert_eq!(hits.len(), 1, "single-sequence database: one best hit");
    assert_eq!(hits[0].score, 4);
    assert_eq!(hits[0].t_start, 2);
    assert_eq!(hits[0].t_len, 4);
    assert!(
        stats.columns_expanded < 11 * 4,
        "fewer columns than full S-W"
    );
}

#[test]
fn section_33_heuristic_vector() {
    // The walkthrough's h vector: [4, 3, 2, 1, 0].
    let scoring = Scoring::unit_dna();
    let h = oasis::core::heuristic_vector(&dna("TACG"), &scoring);
    assert_eq!(h, vec![4, 3, 2, 1, 0]);
}

#[test]
fn figure9_query_encodable() {
    // The online-behaviour experiment's query must encode cleanly.
    let q = Alphabet::protein().encode_str("DKDGDGCITTKEL").unwrap();
    assert_eq!(q.len(), 13);
}

#[test]
fn walkthrough_on_disk_tree_matches() {
    // The same §3.3 walkthrough must hold against the disk representation.
    let db = figure2_db();
    let tree = SuffixTree::build(&db);
    let (image, _) = DiskTreeBuilder::with_block_size(64).build_image(&tree);
    let disk = DiskSuffixTree::open_image(image, 64, 1 << 20).unwrap();
    let scoring = Scoring::unit_dna();
    let q = dna("TACG");
    let params = OasisParams::with_min_score(1);
    let (hits, _) = OasisSearch::new(&disk, &db, &q, &scoring, &params).run();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].score, 4);
    assert_eq!(hits[0].t_start, 2);
}
