//! The disk-resident suffix tree (§3.4 layout + buffer pool) must be
//! observationally identical to the in-memory tree: same exact-match
//! results, same OASIS results, at any block size and any pool size.

use proptest::prelude::*;

use oasis::prelude::*;
use oasis::storage::MemDevice;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

fn disk_tree(tree: &SuffixTree, block_size: usize, pool_bytes: usize) -> DiskSuffixTree<MemDevice> {
    let (image, _) = oasis::storage::DiskTreeBuilder::with_block_size(block_size).build_image(tree);
    DiskSuffixTree::open_image(image, block_size, pool_bytes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_results_identical(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
        query in prop::collection::vec(0u8..4, 1..10),
        min in 1i32..6,
        block_pow in 6u32..9, // 64..256 byte blocks: force record straddling pressure
        pool_frames in 1usize..16,
    ) {
        let db = build_db(&seqs);
        let mem = SuffixTree::build(&db);
        let block = 1usize << block_pow;
        let disk = disk_tree(&mem, block, block * pool_frames);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(min);
        let (mem_hits, mem_stats) =
            OasisSearch::new(&mem, &db, &query, &scoring, &params).run();
        let (disk_hits, disk_stats) =
            OasisSearch::new(&disk, &db, &query, &scoring, &params).run();
        // Hits may tie-differ in order only when scores are equal; compare
        // as multisets of (seq, score).
        let mut a: Vec<_> = mem_hits.iter().map(|h| (h.seq, h.score)).collect();
        let mut b: Vec<_> = disk_hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Identical DP work regardless of the backing store.
        prop_assert_eq!(mem_stats.columns_expanded, disk_stats.columns_expanded);
    }

    #[test]
    fn exact_matching_identical(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
        query in prop::collection::vec(0u8..4, 1..10),
    ) {
        let db = build_db(&seqs);
        let mem = SuffixTree::build(&db);
        let disk = disk_tree(&mem, 64, 1 << 16);
        prop_assert_eq!(
            oasis::suffix::occurrences(&mem, &query),
            oasis::suffix::occurrences(&disk, &query)
        );
    }

    #[test]
    fn traversal_identical(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
    ) {
        let db = build_db(&seqs);
        let mem = SuffixTree::build(&db);
        let disk = disk_tree(&mem, 64, 1 << 16);
        prop_assert_eq!(mem.text_len(), disk.text_len());
        prop_assert_eq!(
            SuffixTreeAccess::num_internal(&mem),
            SuffixTreeAccess::num_internal(&disk)
        );
        prop_assert_eq!(
            mem.collect_leaves(mem.root()),
            disk.collect_leaves(disk.root())
        );
    }
}

#[test]
fn one_frame_pool_is_still_correct() {
    // Absolute worst case: a single buffer frame, every access thrashes.
    let db = build_db(&[
        vec![0, 1, 2, 3, 0, 1, 2, 3, 1, 1],
        vec![2, 3, 0, 1],
        vec![0, 0, 0, 0, 0],
    ]);
    let mem = SuffixTree::build(&db);
    let disk = disk_tree(&mem, 64, 1);
    let scoring = Scoring::unit_dna();
    let params = OasisParams::with_min_score(2);
    let query = vec![0, 1, 2, 3];
    let (mem_hits, _) = OasisSearch::new(&mem, &db, &query, &scoring, &params).run();
    let (disk_hits, _) = OasisSearch::new(&disk, &db, &query, &scoring, &params).run();
    let mut a: Vec<_> = mem_hits.iter().map(|h| (h.seq, h.score)).collect();
    let mut b: Vec<_> = disk_hits.iter().map(|h| (h.seq, h.score)).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert!(disk.pool().stats().total().misses() > 0);
}

#[test]
fn partitioned_build_serves_identical_queries() {
    // Hunt-style bounded-memory construction feeds the same search results.
    let db = build_db(&[
        vec![0, 1, 2, 3, 0, 1, 2, 3, 1, 1, 0, 2],
        vec![2, 3, 0, 1, 2, 2, 3],
        vec![1, 1, 1, 0, 3],
    ]);
    let direct = SuffixTree::build(&db);
    let partitioned = oasis::storage::partitioned::build_tree_partitioned(&db, 4);
    let scoring = Scoring::unit_dna();
    let params = OasisParams::with_min_score(2);
    let query = vec![0, 1, 2];
    let (a, _) = OasisSearch::new(&direct, &db, &query, &scoring, &params).run();
    let (b, _) = OasisSearch::new(&partitioned, &db, &query, &scoring, &params).run();
    assert_eq!(a, b);
}
