//! Property suite for the enhanced-suffix-array backend's two load-bearing
//! shortcuts:
//!
//! * the **two-byte bucket LUT** must agree with a naive binary search
//!   over the suffix array for *every* `(c0, c1)` prefix — including
//!   terminator second symbols, residues absent from the text (empty
//!   regions), and the edge buckets at 0x00 and 0xFF;
//! * **`from_parts` is a validator**: a truncated or extended payload is
//!   always rejected with a typed error, and an arbitrary byte flip either
//!   surfaces as a typed error or provably changes nothing observable
//!   (never silently serves different data).

use proptest::prelude::*;

use oasis::prelude::*;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

/// The LUT sub-key of a second symbol: every terminator sorts before every
/// residue in the ranked text, so terminators collapse to 0 and residue
/// `c` maps to `c + 1`. (Mirrors the index's internal key; restated here
/// so the oracle is independent of the implementation.)
fn key2(c1: u8) -> usize {
    if c1 == TERMINATOR {
        0
    } else {
        c1 as usize + 1
    }
}

/// Naive oracle: binary-search the suffix array for the region whose
/// suffixes start with the two-byte key of `(c0, c1)`. Keys are
/// non-decreasing along the SA (first symbols in code order, then
/// terminators before residues in code order), so `partition_point`-style
/// searches are sound.
fn naive_sa_range(esa: &EsaIndex, c0: u8, c1: u8) -> (u32, u32) {
    let text = esa.text();
    let m = esa.num_suffixes();
    let target = ((c0 as usize) << 8) | key2(c1);
    let key_at = |i: u32| {
        let p = esa.sa(i) as usize;
        let first = text[p] as usize;
        let second = key2(text.get(p + 1).copied().unwrap_or(TERMINATOR));
        (first << 8) | second
    };
    let (mut lo, mut hi) = (0u32, m);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key_at(mid) < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let start = lo;
    let mut hi = m;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key_at(mid) <= target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (start, lo)
}

/// First-symbol-only oracle for `bucket_range`.
fn naive_bucket_range(esa: &EsaIndex, c0: u8) -> (u32, u32) {
    let text = esa.text();
    let m = esa.num_suffixes();
    let first_at = |i: u32| text[esa.sa(i) as usize];
    let (mut lo, mut hi) = (0u32, m);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if first_at(mid) < c0 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let start = lo;
    let mut hi = m;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if first_at(mid) <= c0 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (start, lo)
}

/// Observable equality of two indexes over the same database: same SA,
/// same LCP, same LUT answers.
fn observably_equal(a: &EsaIndex, b: &EsaIndex) -> bool {
    if a.num_suffixes() != b.num_suffixes() {
        return false;
    }
    for i in 0..a.num_suffixes() {
        if a.sa(i) != b.sa(i) || a.lcp(i) != b.lcp(i) {
            return false;
        }
    }
    (0..=255u8).all(|c0| a.bucket_range(c0) == b.bucket_range(c0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LUT jump ≡ binary search, for arbitrary two-byte prefixes drawn
    /// from the *full* byte range — most of which index empty regions.
    #[test]
    fn lut_lookup_equals_naive_binary_search(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 0..60), 1..8),
        probes in prop::collection::vec(0u32..65536, 1..32),
    ) {
        let db = build_db(&seqs);
        let esa = EsaIndex::build(&db);
        // Arbitrary probes (mostly empty regions)…
        for key in probes {
            let (c0, c1) = ((key >> 8) as u8, key as u8);
            prop_assert_eq!(esa.sa_range(c0, c1), naive_sa_range(&esa, c0, c1),
                "sa_range({}, {})", c0, c1);
            prop_assert_eq!(esa.bucket_range(c0), naive_bucket_range(&esa, c0),
                "bucket_range({})", c0);
        }
        // …plus every populated key and the terminator/edge buckets.
        for c0 in [0u8, 1, 2, 3, 0x7f, 0xfe, 0xff] {
            for c1 in [0u8, 1, 2, 3, TERMINATOR] {
                prop_assert_eq!(esa.sa_range(c0, c1), naive_sa_range(&esa, c0, c1),
                    "sa_range({}, {})", c0, c1);
            }
            prop_assert_eq!(esa.bucket_range(c0), naive_bucket_range(&esa, c0),
                "bucket_range({})", c0);
        }
        // The whole LUT partitions the suffix array: buckets tile [0, m).
        let mut at = 0u32;
        for c0 in 0..=255u8 {
            let (lo, hi) = esa.bucket_range(c0);
            prop_assert_eq!(lo, at);
            prop_assert!(hi >= lo);
            at = hi;
        }
        prop_assert_eq!(at, esa.num_suffixes());
    }

    /// Truncating or extending a packed payload is always a typed error
    /// (the header pins the exact byte length).
    #[test]
    fn from_parts_rejects_wrong_length_payloads(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..6),
        cut in 0usize..1 << 20,
    ) {
        let db = build_db(&seqs);
        let esa = EsaIndex::build(&db);
        let full = esa.payload().to_vec();
        let take = cut % full.len(); // 0..len: always a strict prefix
        let err = EsaIndex::from_parts(full[..take].to_vec(), &db)
            .expect_err("truncated payload accepted");
        let typed = matches!(err, EsaError::Truncated { .. } | EsaError::BadMagic);
        prop_assert!(typed, "unexpected error class: {}", err);
        let mut longer = full.clone();
        longer.extend_from_slice(&[0u8; 3]);
        let overlong_typed = matches!(
            EsaIndex::from_parts(longer, &db),
            Err(EsaError::Truncated { .. })
        );
        prop_assert!(overlong_typed, "overlong payload not rejected as Truncated");
    }

    /// An arbitrary byte flip anywhere in the payload either rejects with
    /// a typed error or leaves every observable unchanged — corruption is
    /// never silently served. (Bit-exact detection is the artifact
    /// checksum's job; this pins the validator's own floor.)
    #[test]
    fn from_parts_never_serves_corruption_silently(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..6),
        at in 0usize..1 << 20,
        flip in 1u8..=255,
    ) {
        let db = build_db(&seqs);
        let esa = EsaIndex::build(&db);
        let mut bent = esa.payload().to_vec();
        let pos = at % bent.len();
        bent[pos] ^= flip;
        match EsaIndex::from_parts(bent, &db) {
            Err(_) => {} // typed rejection: Truncated/BadMagic/Geometry/Invariant
            Ok(loaded) => prop_assert!(
                observably_equal(&esa, &loaded),
                "flip at byte {} accepted but changed observables", pos
            ),
        }
    }

    /// A payload must not validate against a different database, even one
    /// with the same text length.
    #[test]
    fn from_parts_rejects_wrong_database(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 2..30), 1..5),
    ) {
        let db = build_db(&seqs);
        let esa = EsaIndex::build(&db);
        // Same shape, different content: bump the first residue mod 4.
        let mut other = seqs.clone();
        other[0][0] = (other[0][0] + 1) % 4;
        let db2 = build_db(&other);
        prop_assert!(EsaIndex::from_parts(esa.payload().to_vec(), &db2).is_err());
    }
}
