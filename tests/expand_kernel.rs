//! Differential property for the expand kernel: the production
//! (profile + two-pass + live-mask) kernel must be **byte-identical** to
//! the scalar Algorithm 3 transcription on every field of every node it
//! ever produces — across random databases, queries, thresholds, rule
//! ablations, and both index substrates (suffix tree and packed ESA).
//!
//! The walk expands the *entire* viable frontier breadth-first with both
//! kernels in lockstep, so agreement is checked not just at the root's
//! children but along every path the real search could take.

use proptest::prelude::*;

use oasis::core::{
    expand_reference, expand_with_rules, heuristic_vector, root_node, ExpandScratch, PruneRules,
    SearchNode, Status,
};
use oasis::prelude::*;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

/// Expand every reachable viable node with both kernels, asserting
/// lockstep equality (returned node and column counter) at each arc.
fn walk_both<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    query: &[u8],
    scoring: &Scoring,
    min_score: i32,
    rules: PruneRules,
) -> Result<u64, TestCaseError> {
    let h = heuristic_vector(query, scoring);
    let Some(root) = root_node(query, &h, min_score) else {
        return Ok(0);
    };
    let mut fast_scratch = ExpandScratch::default();
    let mut slow_scratch = ExpandScratch::default();
    let mut kids = Vec::new();
    let mut frontier: Vec<SearchNode> = vec![root];
    let mut seq = 0u64;
    let mut expanded = 0u64;
    while let Some(node) = frontier.pop() {
        kids.clear();
        tree.children_into(node.handle, &mut kids);
        for &child in &kids {
            seq += 1;
            let (mut fast_cols, mut slow_cols) = (0u64, 0u64);
            let fast = expand_with_rules(
                tree,
                &node,
                child,
                query,
                scoring,
                &h,
                min_score,
                seq,
                &mut fast_scratch,
                &mut fast_cols,
                rules,
            );
            let slow = expand_reference(
                tree,
                &node,
                child,
                query,
                scoring,
                &h,
                min_score,
                seq,
                &mut slow_scratch,
                &mut slow_cols,
                rules,
            );
            prop_assert_eq!(&fast, &slow, "kernels diverged at seq {}", seq);
            prop_assert_eq!(
                fast_cols,
                slow_cols,
                "column counts diverged at seq {}",
                seq
            );
            expanded += 1;
            if fast.status == Status::Viable {
                frontier.push(fast);
            }
        }
    }
    Ok(expanded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_kernel_equals_reference_everywhere(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
        query in prop::collection::vec(0u8..4, 1..14),
        min in 1i32..6,
        non_positive in any::<bool>(),
        no_improvement in any::<bool>(),
        threshold in any::<bool>(),
    ) {
        let db = build_db(&seqs);
        let scoring = Scoring::unit_dna();
        let rules = PruneRules { non_positive, no_improvement, threshold };
        let tree = SuffixTree::build(&db);
        let esa = EsaIndex::build(&db);
        let via_tree = walk_both(&tree, &query, &scoring, min, rules)?;
        let via_esa = walk_both(&esa, &query, &scoring, min, rules)?;
        // Same traversal shape over both substrates: identical arc count.
        prop_assert_eq!(via_tree, via_esa);
    }

    /// Queries drawn across the fused-scalar cutoff (48) and the 64-cell
    /// block boundary, exercising the scalar fallback, the single-word
    /// mask, and multi-word live-mask skipping against the oracle.
    #[test]
    fn fast_kernel_equals_reference_past_one_mask_word(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 20..80), 1..4),
        query in prop::collection::vec(0u8..4, 40..100),
        min in 1i32..12,
    ) {
        let db = build_db(&seqs);
        let scoring = Scoring::unit_dna();
        let tree = SuffixTree::build(&db);
        walk_both(&tree, &query, &scoring, min, PruneRules::default())?;
    }
}
