//! Live ingestion's correctness contract, end to end over the real
//! artifact + WAL files:
//!
//! * **Byte-identity**: querying a layered index (base artifact + WAL
//!   delta) equals a full rebuild over the concatenated database — same
//!   hits, same order — for K ∈ {1, 4} base shards, both index backends,
//!   serially and on 4 worker threads; and it still holds after the
//!   delta is compacted into a fresh base (property-tested).
//! * **Crash recovery**: a process that appended and then died without
//!   any shutdown handshake loses nothing — reopening replays the WAL;
//!   a record torn mid-write by the crash is discarded cleanly while
//!   every acknowledged record before it survives.
//! * **Lineage**: offline compaction records the delta lineage in the
//!   manifest and truncates the log, and a crash *between* the fold and
//!   the truncation replays nothing twice.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use oasis::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per use (proptest reruns cases in-process).
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "oasis-live-ingestion-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_db(seqs: &[Vec<u8>], name_offset: usize) -> Arc<SequenceDatabase> {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(
            format!("s{}", name_offset + i),
            codes.clone(),
        ))
        .unwrap();
    }
    Arc::new(b.finish())
}

fn sequences(seqs: &[Vec<u8>], name_offset: usize) -> Vec<Sequence> {
    seqs.iter()
        .enumerate()
        .map(|(i, codes)| Sequence::from_codes(format!("s{}", name_offset + i), codes.clone()))
        .collect()
}

fn jobs_for(queries: &[Vec<u8>]) -> Vec<BatchQuery> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| BatchQuery::named(format!("q{i}"), q.clone(), OasisParams::with_min_score(1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Append → query ≡ full rebuild, before AND after compaction, for
    /// K ∈ {1, 4} base shards × {tree, esa} × {serial, 4 threads}.
    #[test]
    fn layered_query_equals_full_rebuild(
        base in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..6),
        appended in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..5),
        queries in prop::collection::vec(prop::collection::vec(0u8..4, 1..8), 1..4),
    ) {
        let base_db = build_db(&base, 0);
        // Ground truth: a fresh unsharded build over base ++ appended
        // (sharded results are shard-count invariant, so one reference
        // covers every K).
        let mut all = base.clone();
        all.extend(appended.iter().cloned());
        let full_db = build_db(&all, 0);
        let jobs = jobs_for(&queries);
        let reference = ShardedEngine::build(full_db, Scoring::unit_dna(), 1)
            .with_threads(1)
            .run_batch(&jobs);

        for k in [1usize, 4] {
            for backend in [IndexBackend::Tree, IndexBackend::Esa] {
                let dir = scratch("identity");
                build_index_artifact(&base_db, &dir, k, 64, backend).expect("artifact written");
                let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
                    .expect("live open");
                live.append(sequences(&appended, base.len())).expect("append");

                // Base + delta, then a compacted base: both must match.
                for stage in ["delta", "compacted"] {
                    if stage == "compacted" {
                        let report = live.compact(|_| Ok(0)).expect("compact");
                        prop_assert_eq!(report.folded_seqs as usize, appended.len());
                    }
                    let snapshot = live.snapshot();
                    for threads in [1usize, 4] {
                        let got: Vec<SearchOutcome> = if threads == 1 {
                            jobs.iter().map(|j| snapshot.engine().run_job(j)).collect()
                        } else {
                            snapshot.engine().run_batch(&jobs)
                        };
                        for (g, w) in got.iter().zip(&reference) {
                            prop_assert_eq!(
                                &g.hits, &w.hits,
                                "stage={} k={} threads={} backend={}",
                                stage, k, threads, backend.as_str()
                            );
                        }
                    }
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

#[test]
fn reopen_after_simulated_kill_replays_the_wal() {
    let base = vec![vec![0u8, 2, 3, 0, 1, 2, 1], vec![3u8, 0, 1, 1, 2]];
    let added = vec![vec![1u8, 1, 2, 3, 0, 2, 1, 0], vec![2u8, 3, 0, 2]];
    let db = build_db(&base, 0);
    let dir = scratch("kill");
    build_index_artifact(&db, &dir, 2, 64, IndexBackend::Tree).expect("artifact written");

    {
        // The "process" that appends and then dies: dropping the
        // LiveIndex without any shutdown handshake is exactly what a
        // kill -9 leaves behind (the WAL has no close record).
        let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
            .expect("live open");
        let receipt = live.append(sequences(&added, base.len())).expect("append");
        assert_eq!(receipt.appended_seqs, 2);
    }

    let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
        .expect("reopen after kill");
    let stats = live.stats();
    assert_eq!(stats.delta_seqs, 2, "both appends replayed");
    let snapshot = live.snapshot();
    let outcome = snapshot
        .engine()
        .run_one(&[1u8, 1, 2, 3], &OasisParams::with_min_score(3));
    assert!(
        outcome.hits.iter().any(|h| h.seq == 2),
        "replayed sequence answers queries: {:?}",
        outcome.hits
    );

    // Identity after recovery, not just presence.
    let mut all = base.clone();
    all.extend(added.clone());
    let reference = ShardedEngine::build(build_db(&all, 0), Scoring::unit_dna(), 1);
    let q = vec![2u8, 3, 0, 2];
    assert_eq!(
        snapshot
            .engine()
            .run_one(&q, &OasisParams::with_min_score(1))
            .hits,
        reference.run_one(&q, &OasisParams::with_min_score(1)).hits
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_is_discarded_and_earlier_records_survive() {
    let base = vec![vec![0u8, 2, 3, 0, 1]];
    let added = vec![vec![1u8, 1, 2, 3], vec![2u8, 3, 0, 2, 1]];
    let dir = scratch("torn");
    build_index_artifact(&build_db(&base, 0), &dir, 1, 64, IndexBackend::Tree)
        .expect("artifact written");
    {
        let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
            .expect("live open");
        live.append(sequences(&added, 1)).expect("append");
    }

    // Tear the last record mid-write, as a crash during an fsync would.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("wal bytes");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).expect("tear the tail");

    // Read-only inspection sees the tear before any writer repairs it.
    let replay = replay_wal(&dir).expect("replay").expect("wal exists");
    assert!(replay.torn_tail, "the tear is visible to inspection");
    assert_eq!(replay.records.len(), 1);
    assert_eq!(replay.records[0].name, "s1");

    let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
        .expect("reopen with torn tail");
    let stats = live.stats();
    assert_eq!(
        stats.delta_seqs, 1,
        "the torn record is discarded, the acknowledged one survives"
    );
    // Opening for write repaired the log to its intact prefix.
    let repaired = replay_wal(&dir).expect("replay").expect("wal exists");
    assert!(!repaired.torn_tail, "open-for-write repairs the tail");
    assert_eq!(repaired.records.len(), 1);

    // A fresh append after recovery continues the seq_no sequence
    // (monotone over the artifact's lifetime — the torn record's slot
    // is reused because it was never acknowledged).
    let receipt = live
        .append(sequences(&[vec![3u8, 3, 0]], 2))
        .expect("append after recovery");
    assert_eq!(receipt.stats.delta_seqs, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn offline_compaction_records_lineage_and_truncates() {
    let base = vec![vec![0u8, 2, 3, 0, 1, 2], vec![3u8, 0, 1]];
    let added = vec![vec![1u8, 1, 2, 3, 0], vec![2u8, 3, 0, 2]];
    let dir = scratch("lineage");
    build_index_artifact(&build_db(&base, 0), &dir, 2, 64, IndexBackend::Tree)
        .expect("artifact written");
    {
        let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
            .expect("live open");
        live.append(sequences(&added, 2)).expect("append");
    }

    let report = compact_artifact(&dir, LiveIndexOptions::default()).expect("offline compaction");
    assert_eq!(report.folded_seqs, 2);

    let manifest = read_manifest(&dir).expect("manifest");
    assert_eq!(manifest.num_seqs, 4);
    let lineage = manifest.lineage.expect("compaction recorded lineage");
    assert_eq!(lineage.compactions, 1);
    assert_eq!(lineage.appended_seqs, 2);
    assert_eq!(lineage.folded_through, 1);
    let replay = replay_wal(&dir).expect("replay").expect("wal exists");
    assert!(replay.records.is_empty(), "the log was truncated");

    // Crash between a fold and its truncation: simulate by restoring a
    // full log next to the already-folded manifest. Replay must skip
    // every folded record — nothing is applied twice.
    let mut wal = WriteAheadLog::open(&dir).expect("wal reopen").0;
    // The records were folded through seq 1; write stale duplicates
    // with the *same* seq numbers the fold consumed.
    wal.rewrite(&[
        WalRecord {
            seq_no: 0,
            name: "s2".to_string(),
            codes: added[0].clone(),
        },
        WalRecord {
            seq_no: 1,
            name: "s3".to_string(),
            codes: added[1].clone(),
        },
    ])
    .expect("restore stale log");
    drop(wal);
    let live = LiveIndex::open(&dir, Scoring::unit_dna(), LiveIndexOptions::default())
        .expect("reopen after simulated crash");
    assert_eq!(
        live.stats().delta_seqs,
        0,
        "folded records must not replay into the delta again"
    );
    let second = compact_artifact(&dir, LiveIndexOptions::default()).expect("idle compaction");
    assert_eq!(second.folded_seqs, 0, "nothing left to fold");
    assert_eq!(
        read_manifest(&dir).expect("manifest").num_seqs,
        4,
        "no sequence was folded twice"
    );
    std::fs::remove_dir_all(&dir).ok();
}
