//! Property tests on the index substrate: suffix arrays (three independent
//! builders agree), LCP, the generalized suffix tree's structural
//! invariants, and exact-match search against a naive scan.

use proptest::prelude::*;

use oasis::prelude::*;
use oasis::suffix::{lcp_kasai, occurrences, suffix_array, RankedText};

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

fn naive_occurrences(db: &SequenceDatabase, query: &[u8]) -> Vec<u32> {
    let text = db.text();
    (0..text.len())
        .filter(|&p| p + query.len() <= text.len() && &text[p..p + query.len()] == query)
        .map(|p| p as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn three_sa_builders_agree(text in prop::collection::vec(0u32..6, 0..120)) {
        let sais = suffix_array(&text);
        let doubling = oasis::suffix::doubling::suffix_array_doubling(&text);
        let naive = oasis::suffix::naive::suffix_array_naive(&text);
        prop_assert_eq!(&sais, &doubling);
        prop_assert_eq!(&sais, &naive);
    }

    #[test]
    fn partitioned_sa_agrees(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..30), 1..6),
        budget in 1usize..64,
    ) {
        let db = build_db(&seqs);
        let ranked = RankedText::from_database(&db);
        prop_assert_eq!(
            oasis::storage::partitioned_suffix_array(&ranked, budget),
            suffix_array(ranked.ranks())
        );
    }

    #[test]
    fn lcp_matches_direct_comparison(text in prop::collection::vec(0u32..4, 1..100)) {
        let sa = suffix_array(&text);
        let lcp = lcp_kasai(&text, &sa);
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            let want = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
            prop_assert_eq!(lcp[i], want, "at rank {}", i);
        }
    }

    #[test]
    fn tree_has_one_leaf_per_residue(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 0..30), 1..8),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        prop_assert_eq!(tree.num_leaves() as u64, db.total_residues());
        // Leaves are exactly the non-terminator positions.
        let leaves = tree.collect_leaves(tree.root());
        let expect: Vec<u32> = (0..db.text_len())
            .filter(|&p| db.text()[p as usize] != TERMINATOR)
            .collect();
        prop_assert_eq!(leaves, expect);
    }

    #[test]
    fn internal_depths_strictly_increase_down_paths(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..30), 1..8),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        // DFS: child depth > parent depth; branching factor >= 2 for
        // non-root internal nodes (compactness / PATRICIA property).
        let mut stack = vec![tree.root()];
        let mut kids = Vec::new();
        while let Some(node) = stack.pop() {
            let depth = tree.depth(node);
            tree.children_into(node, &mut kids);
            if node != tree.root() {
                prop_assert!(kids.len() >= 2, "internal node with {} children", kids.len());
            }
            for &c in &kids {
                prop_assert!(tree.depth(c) > depth);
                if !c.is_leaf() {
                    stack.push(c);
                }
            }
        }
    }

    #[test]
    fn sibling_arcs_start_with_distinct_symbols(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..30), 1..8),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let mut stack = vec![tree.root()];
        let mut kids = Vec::new();
        while let Some(node) = stack.pop() {
            let depth = tree.depth(node);
            tree.children_into(node, &mut kids);
            let mut firsts: Vec<u8> = kids
                .iter()
                .map(|&c| {
                    let mut b = [0u8];
                    tree.arc_fill(depth, c, 0, &mut b);
                    b[0]
                })
                .collect();
            let before = firsts.len();
            firsts.sort_unstable();
            firsts.dedup();
            // Terminator-leading leaf arcs may repeat (distinct sequences);
            // all residue-leading arcs must be unique.
            let terminators = kids.len() - firsts.len();
            let _ = terminators;
            let residue_firsts = firsts.iter().filter(|&&f| f != TERMINATOR).count();
            let residue_kids = kids
                .iter()
                .filter(|&&c| {
                    let mut b = [0u8];
                    tree.arc_fill(depth, c, 0, &mut b);
                    b[0] != TERMINATOR
                })
                .count();
            prop_assert_eq!(residue_firsts, residue_kids, "duplicate branching symbol");
            let _ = before;
            for &c in &kids {
                if !c.is_leaf() {
                    stack.push(c);
                }
            }
        }
    }

    #[test]
    fn exact_search_matches_naive_scan(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..30), 1..8),
        query in prop::collection::vec(0u8..4, 1..8),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        prop_assert_eq!(occurrences(&tree, &query), naive_occurrences(&db, &query));
    }
}
