//! Deeper property tests over the substrates: the three suffix-tree
//! builders agree; alignments recompute their own scores; FASTA round-trips
//! arbitrary sequences; BLAST word neighborhoods match brute force; the
//! E-value-ordered search agrees with an offline sort.

use proptest::prelude::*;

use oasis::align::sw_align;
use oasis::blast::WordIndex;
use oasis::prelude::*;
use oasis::storage::BlockDevice;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

/// Canonical structural form of a suffix tree.
fn canon(tree: &SuffixTree) -> Vec<(Vec<u8>, bool)> {
    let mut out = Vec::new();
    let mut stack = vec![(tree.root(), Vec::new())];
    let mut kids = Vec::new();
    while let Some((h, prefix)) = stack.pop() {
        if h.is_leaf() {
            out.push((prefix, true));
            continue;
        }
        if h != tree.root() {
            out.push((prefix.clone(), false));
        }
        tree.children_into(h, &mut kids);
        let depth = tree.depth(h);
        for &c in kids.iter() {
            let mut p = prefix.clone();
            p.extend(tree.arc_label(depth, c));
            stack.push((c, p));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ukkonen_equals_sa_builder(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
    ) {
        let db = build_db(&seqs);
        let sa_tree = SuffixTree::build(&db);
        let uk_tree = build_ukkonen(&db);
        prop_assert_eq!(canon(&sa_tree), canon(&uk_tree));
        prop_assert_eq!(sa_tree.num_leaves(), uk_tree.num_leaves());
    }

    #[test]
    fn oasis_identical_over_ukkonen_tree(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..40), 1..8),
        query in prop::collection::vec(0u8..4, 1..10),
        min in 1i32..6,
    ) {
        let db = build_db(&seqs);
        let sa_tree = SuffixTree::build(&db);
        let uk_tree = build_ukkonen(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(min);
        let (a, sa_stats) = OasisSearch::new(&sa_tree, &db, &query, &scoring, &params).run();
        let (b, uk_stats) = OasisSearch::new(&uk_tree, &db, &query, &scoring, &params).run();
        let mut a: Vec<_> = a.iter().map(|h| (h.seq, h.score)).collect();
        let mut b: Vec<_> = b.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa_stats.columns_expanded, uk_stats.columns_expanded);
    }

    #[test]
    fn alignments_recompute_their_scores(
        q in prop::collection::vec(0u8..4, 1..15),
        t in prop::collection::vec(0u8..4, 1..25),
        matched in 1i32..5,
        mismatched in -5i32..-1,
        gap in -4i32..-1,
    ) {
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, matched, mismatched),
            GapModel::linear(gap),
        );
        if let Some(aln) = sw_align(&q, &t, &scoring) {
            prop_assert!(aln.is_consistent());
            // Walk the ops, recomputing the score independently.
            let mut qi = aln.q_start;
            let mut ti = aln.t_start;
            let mut total = 0i32;
            for op in &aln.ops {
                match op {
                    oasis::align::AlignOp::Replace => {
                        total += scoring.sub(q[qi], t[ti]);
                        qi += 1;
                        ti += 1;
                    }
                    oasis::align::AlignOp::Insert => {
                        total += gap;
                        qi += 1;
                    }
                    oasis::align::AlignOp::Delete => {
                        total += gap;
                        ti += 1;
                    }
                }
            }
            prop_assert_eq!(total, aln.score);
            // A local alignment never starts or ends with a gap.
            if let (Some(first), Some(last)) = (aln.ops.first(), aln.ops.last()) {
                prop_assert_eq!(*first, oasis::align::AlignOp::Replace);
                prop_assert_eq!(*last, oasis::align::AlignOp::Replace);
            }
        }
    }

    #[test]
    fn fasta_roundtrip_arbitrary(
        seqs in prop::collection::vec(prop::collection::vec(0u8..20, 1..80), 1..6),
    ) {
        let alphabet = Alphabet::protein();
        let originals: Vec<Sequence> = seqs
            .iter()
            .enumerate()
            .map(|(i, codes)| Sequence::from_codes(format!("seq {i}"), codes.clone()))
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &alphabet, &originals).unwrap();
        let parsed = parse_fasta(&buf[..], &alphabet, UnknownResiduePolicy::Reject).unwrap();
        prop_assert_eq!(parsed, originals);
    }

    #[test]
    fn word_neighborhood_matches_brute_force(
        query in prop::collection::vec(0u8..4, 2..8),
        threshold in -2i32..5,
    ) {
        let matrix = SubstitutionMatrix::unit(AlphabetKind::Dna);
        let w = 2usize;
        prop_assume!(query.len() >= w);
        let idx = WordIndex::build(&query, &matrix, w, threshold);
        for a in 0..4u8 {
            for b in 0..4u8 {
                let code = idx.encode(&[a, b]);
                let want: Vec<u32> = (0..=query.len() - w)
                    .filter(|&p| {
                        matrix.score(query[p], a) + matrix.score(query[p + 1], b) >= threshold
                    })
                    .map(|p| p as u32)
                    .collect();
                let got = idx.lookup(code).unwrap_or(&[]).to_vec();
                prop_assert_eq!(got, want, "word ({}, {})", a, b);
            }
        }
    }

    #[test]
    fn evalue_order_is_offline_sort(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..60), 2..8),
        query in prop::collection::vec(0u8..4, 2..10),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let karlin = KarlinParams::estimate(
            &SubstitutionMatrix::unit(AlphabetKind::Dna),
            &oasis::align::background_dna(),
        )
        .unwrap();
        let params = OasisParams::with_min_score(1);
        let inner = OasisSearch::new(&tree, &db, &query, &scoring, &params);
        let hits: Vec<EvaluedHit> =
            EvalueOrderedSearch::new(inner, &db, query.len(), karlin).collect();
        let online: Vec<f64> = hits.iter().map(|h| h.evalue).collect();
        let mut offline = online.clone();
        offline.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(online, offline);
        // Same hit multiset as the score-ordered search.
        let (score_hits, _) =
            OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        let mut a: Vec<_> = hits.iter().map(|h| (h.hit.seq, h.hit.score)).collect();
        let mut b: Vec<_> = score_hits.iter().map(|h| (h.seq, h.score)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pool_device_equivalence(
        data in prop::collection::vec(any::<u8>(), 1..512),
        frames in 1usize..8,
        reads in prop::collection::vec(0u64..16, 1..40),
    ) {
        // Reading through the pool must always return exactly the device
        // bytes, whatever the eviction pattern.
        let block_size = 32usize;
        let device = MemDevice::new(data.clone(), block_size);
        let num_blocks = device.num_blocks();
        let pool = BufferPool::with_frames(device, frames);
        let mut padded = data.clone();
        padded.resize(padded.len().div_ceil(block_size) * block_size, 0);
        for r in reads {
            let block = r % num_blocks;
            let want = &padded[block as usize * block_size..(block as usize + 1) * block_size];
            pool.read(block, Region::Symbols, |buf| {
                prop_assert_eq!(buf, want, "block {}", block);
                Ok(())
            })?;
        }
        let s = pool.stats().total();
        prop_assert_eq!(s.requests as usize, {
            // every read counted
            s.hits as usize + s.misses() as usize
        });
    }
}

#[test]
fn ukkonen_on_paper_example() {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    b.push_str("paper", "AGTACGCCTAG").unwrap();
    let db = b.finish();
    let uk = build_ukkonen(&db);
    assert_eq!(uk.num_leaves(), 11);
    assert_eq!(SuffixTreeAccess::num_internal(&uk), 6);
}
