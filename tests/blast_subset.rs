//! The heuristic/exact relationship the paper's Figure 5 quantifies: every
//! sequence BLAST reports is also reported by OASIS (at the corresponding
//! threshold), BLAST's per-sequence score never exceeds Smith-Waterman's,
//! and the heuristic genuinely misses some remote homologs.

use oasis::blast::SeedMode;
use oasis::prelude::*;

fn testbed() -> (Workload, SuffixTree, Scoring, KarlinParams) {
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let tree = SuffixTree::build(&workload.db);
    let scoring = Scoring::pam30_protein();
    let karlin =
        KarlinParams::estimate(&scoring.matrix, &oasis::align::stats::background_protein())
            .unwrap();
    (workload, tree, scoring, karlin)
}

#[test]
fn blast_sequences_subset_of_oasis() {
    let (workload, tree, scoring, karlin) = testbed();
    let db = &workload.db;
    let evalue = 20_000.0;
    let queries = generate_queries(&workload, &QuerySpec::proclass_like(20, 5));
    let blast = BlastSearch::new(
        db,
        &scoring,
        BlastParams::short_protein().with_evalue(evalue),
    )
    .unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let min = karlin.min_score_for_evalue(q.len() as u64, db.total_residues(), evalue);
        let params = OasisParams::with_min_score(min);
        let (oasis_hits, _) = OasisSearch::new(&tree, db, q, &scoring, &params).run();
        let (blast_hits, _) = blast.search(q);
        let oasis_seqs: Vec<SeqId> = oasis_hits.iter().map(|h| h.seq).collect();
        for bh in &blast_hits {
            // A BLAST hit passed the same E-value cutoff, so its sequence
            // must appear in the exact result set…
            assert!(
                oasis_seqs.contains(&bh.seq),
                "query {qi}: BLAST-only sequence {}",
                bh.seq
            );
            // …and the heuristic score cannot exceed the exact score.
            let exact = oasis_hits.iter().find(|h| h.seq == bh.seq).unwrap();
            assert!(
                bh.score <= exact.score,
                "query {qi}: heuristic {} > exact {}",
                bh.score,
                exact.score
            );
        }
    }
}

#[test]
fn blast_misses_some_matches_overall() {
    // Across a workload the heuristic finds strictly fewer matches — the
    // effect Figure 5 plots (~60% additional matches for OASIS).
    let (workload, tree, scoring, karlin) = testbed();
    let db = &workload.db;
    let evalue = 20_000.0;
    let queries = generate_queries(&workload, &QuerySpec::proclass_like(30, 6));
    let blast = BlastSearch::new(
        db,
        &scoring,
        BlastParams::short_protein().with_evalue(evalue),
    )
    .unwrap();
    let mut oasis_total = 0usize;
    let mut blast_total = 0usize;
    for q in &queries {
        let min = karlin.min_score_for_evalue(q.len() as u64, db.total_residues(), evalue);
        let params = OasisParams::with_min_score(min);
        oasis_total += OasisSearch::new(&tree, db, q, &scoring, &params).count();
        blast_total += blast.search(q).0.len();
    }
    assert!(
        blast_total < oasis_total,
        "heuristic should miss matches: blast {blast_total} vs oasis {oasis_total}"
    );
}

#[test]
fn two_hit_mode_is_no_more_sensitive_than_one_hit() {
    let (workload, _, scoring, _) = testbed();
    let db = &workload.db;
    let queries = generate_queries(&workload, &QuerySpec::proclass_like(15, 7));
    let one = BlastSearch::new(
        db,
        &scoring,
        BlastParams::short_protein()
            .with_evalue(20_000.0)
            .with_seed_mode(SeedMode::OneHit),
    )
    .unwrap();
    let two = BlastSearch::new(
        db,
        &scoring,
        BlastParams::short_protein()
            .with_evalue(20_000.0)
            .with_seed_mode(SeedMode::TwoHit { window: 40 }),
    )
    .unwrap();
    let mut one_total = 0usize;
    let mut two_total = 0usize;
    for q in &queries {
        one_total += one.search(q).0.len();
        two_total += two.search(q).0.len();
    }
    assert!(
        two_total <= one_total,
        "two-hit {two_total} vs one-hit {one_total}"
    );
}
