//! The central correctness property of the reproduction: OASIS is *exact*.
//! For every database, query, scoring scheme, and threshold, the set of
//! (sequence, best-score) pairs OASIS reports equals what an exhaustive
//! Smith-Waterman scan reports. Property-tested over randomized inputs.

use proptest::prelude::*;

use oasis::prelude::*;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

fn result_set(hits: &[Hit]) -> Vec<(SeqId, Score)> {
    let mut v: Vec<_> = hits.iter().map(|h| (h.seq, h.score)).collect();
    v.sort_unstable();
    v
}

fn sw_set(hits: &[oasis::align::SeqBest]) -> Vec<(SeqId, Score)> {
    let mut v: Vec<_> = hits.iter().map(|h| (h.seq, h.hit.score)).collect();
    v.sort_unstable();
    v
}

/// Strategy: a database of 1..12 DNA sequences with lengths 1..60.
fn db_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 1..60), 1..12)
}

/// Strategy: a query of length 1..14.
fn query_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn oasis_equals_sw_unit_matrix(seqs in db_strategy(), query in query_strategy(), min in 1i32..8) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(min);
        let (hits, _) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &query, &scoring, min);
        prop_assert_eq!(result_set(&hits), sw_set(&sw));
    }

    #[test]
    fn oasis_equals_sw_skewed_matrix(
        seqs in db_strategy(),
        query in query_strategy(),
        min in 1i32..12,
        matched in 1i32..6,
        mismatched in -6i32..-1,
        gap in -5i32..-1,
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(oasis::bioseq::AlphabetKind::Dna, matched, mismatched),
            GapModel::linear(gap),
        );
        let params = OasisParams::with_min_score(min);
        let (hits, _) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &query, &scoring, min);
        prop_assert_eq!(result_set(&hits), sw_set(&sw));
    }

    #[test]
    fn oasis_equals_sw_affine(
        seqs in db_strategy(),
        query in query_strategy(),
        min in 1i32..10,
        open in -6i32..=0,
        extend in -3i32..-1,
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::new(
            SubstitutionMatrix::match_mismatch(oasis::bioseq::AlphabetKind::Dna, 3, -2),
            GapModel::affine(open, extend),
        );
        let params = OasisParams::with_min_score(min);
        let (hits, _) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &query, &scoring, min);
        prop_assert_eq!(result_set(&hits), sw_set(&sw));
    }

    #[test]
    fn hit_windows_recover_their_scores(seqs in db_strategy(), query in query_strategy()) {
        // Every reported hit's window re-aligns to exactly the hit score.
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let (hits, _) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        for hit in &hits {
            let aln = hit.alignment(&db, &query, &scoring);
            prop_assert_eq!(aln.score, hit.score);
            prop_assert!(aln.is_consistent());
            // The window lies inside the hit's sequence.
            let seq_start = db.seq_start(hit.seq) as usize;
            let seq_end = db.seq_terminator(hit.seq) as usize;
            prop_assert!(aln.t_start >= seq_start && aln.t_end <= seq_end);
        }
    }

    #[test]
    fn heuristic_vector_is_admissible(query in query_strategy(), target in prop::collection::vec(0u8..4, 1..30)) {
        // h[i] must upper-bound the best score of q[i..] against ANY target
        // when alignments may end anywhere — check against full S-W of every
        // query suffix vs a random target.
        let scoring = Scoring::unit_dna();
        let h = oasis::core::heuristic_vector(&query, &scoring);
        for i in 0..=query.len() {
            let best = oasis::align::sw_best(&query[i..], &target, &scoring).score;
            prop_assert!(h[i] >= best, "h[{}]={} < best {}", i, h[i], best);
        }
    }
}

#[test]
fn regression_empty_and_degenerate_cases() {
    // Single-symbol database and query.
    let db = build_db(&[vec![0]]);
    let tree = SuffixTree::build(&db);
    let scoring = Scoring::unit_dna();
    let params = OasisParams::with_min_score(1);
    let (hits, _) = OasisSearch::new(&tree, &db, &[0], &scoring, &params).run();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].score, 1);

    // Query with no positive alignment anywhere.
    let (hits, _) = OasisSearch::new(&tree, &db, &[3], &scoring, &params).run();
    assert!(hits.is_empty());
}

#[test]
fn regression_repetitive_database() {
    // Highly repetitive content stresses deep suffix-tree sharing.
    let db = build_db(&[
        vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        vec![0, 1, 0, 1, 0, 1],
        vec![1, 0, 1, 0, 1, 0, 1, 0],
        vec![0, 0, 0, 0, 0, 0, 0, 0, 0],
    ]);
    let tree = SuffixTree::build(&db);
    let scoring = Scoring::unit_dna();
    let query = vec![0, 1, 0, 1, 0];
    for min in 1..=5 {
        let params = OasisParams::with_min_score(min);
        let (hits, _) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
        let sw = SwScanner::new().scan(&db, &query, &scoring, min);
        assert_eq!(result_set(&hits), sw_set(&sw), "min_score {min}");
    }
}
