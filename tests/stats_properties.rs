//! Property tests on Karlin-Altschul statistics and the E-value ⇔ minScore
//! conversions (the paper's Equations 2–3), over randomized match/mismatch
//! scoring systems.

use proptest::prelude::*;

use oasis::align::{background_dna, KarlinParams, SubstitutionMatrix};
use oasis::bioseq::AlphabetKind;

fn params(matched: i32, mismatched: i32) -> Option<KarlinParams> {
    let m = SubstitutionMatrix::match_mismatch(AlphabetKind::Dna, matched, mismatched);
    KarlinParams::estimate(&m, &background_dna()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lambda_positive_and_finite(matched in 1i32..8, mismatched in -12i32..-1) {
        // Negative drift requires E[s] = p*m + (1-p)*x < 0 with p = 1/4.
        prop_assume!(0.25 * matched as f64 + 0.75 * mismatched as f64 + 1e-9 < 0.0);
        let p = params(matched, mismatched).expect("drift is negative");
        prop_assert!(p.lambda > 0.0 && p.lambda.is_finite());
        prop_assert!(p.h > 0.0 && p.h.is_finite());
        prop_assert!(p.k > 0.0 && p.k <= 10.0);
    }

    #[test]
    fn lambda_satisfies_its_equation(matched in 1i32..6, mismatched in -9i32..-2) {
        prop_assume!(0.25 * matched as f64 + 0.75 * mismatched as f64 + 1e-9 < 0.0);
        let p = params(matched, mismatched).expect("drift is negative");
        // Σ pᵢpⱼ e^{λ·sᵢⱼ} over the match/mismatch distribution:
        let sum = 0.25 * (p.lambda * matched as f64).exp()
            + 0.75 * (p.lambda * mismatched as f64).exp();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
    }

    #[test]
    fn equation_3_inverts_equation_2(
        matched in 1i32..6,
        mismatched in -9i32..-2,
        m in 4u64..200,
        n in 1_000u64..100_000_000,
        e_exp in -3i32..5,
    ) {
        prop_assume!(0.25 * matched as f64 + 0.75 * mismatched as f64 + 1e-9 < 0.0);
        let p = params(matched, mismatched).expect("drift is negative");
        let e = 10f64.powi(e_exp);
        let s = p.min_score_for_evalue(m, n, e);
        prop_assert!(s >= 1);
        // The chosen score satisfies the E-value bound…
        prop_assert!(p.evalue(m, n, s) <= e * (1.0 + 1e-9));
        // …minimally (unless clamped at 1).
        if s > 1 {
            prop_assert!(p.evalue(m, n, s - 1) > e);
        }
    }

    #[test]
    fn evalue_monotonic_in_all_arguments(
        matched in 1i32..6,
        mismatched in -9i32..-2,
    ) {
        prop_assume!(0.25 * matched as f64 + 0.75 * mismatched as f64 + 1e-9 < 0.0);
        let p = params(matched, mismatched).expect("drift is negative");
        prop_assert!(p.evalue(16, 1_000_000, 20) < p.evalue(16, 1_000_000, 10));
        prop_assert!(p.evalue(32, 1_000_000, 10) > p.evalue(16, 1_000_000, 10));
        prop_assert!(p.evalue(16, 2_000_000, 10) > p.evalue(16, 1_000_000, 10));
    }

    #[test]
    fn stricter_matrices_have_larger_lambda(mismatched in -9i32..-2) {
        // For fixed match score, a harsher mismatch penalty increases λ
        // (each score point carries more information).
        let relaxed = params(1, mismatched).expect("drift");
        let stricter = params(1, mismatched - 1).expect("drift");
        prop_assert!(stricter.lambda > relaxed.lambda);
    }
}

#[test]
fn paper_scale_thresholds_are_sensible() {
    // With PAM30 on a SWISS-PROT-sized database (m=16, n=40M), E=20000 and
    // E=1 must produce thresholds in a plausible band, with E=1 stricter.
    let p = KarlinParams::estimate(
        &SubstitutionMatrix::pam30(),
        &oasis::align::background_protein(),
    )
    .unwrap();
    let relaxed = p.min_score_for_evalue(16, 40_000_000, 20_000.0);
    let strict = p.min_score_for_evalue(16, 40_000_000, 1.0);
    assert!(relaxed < strict);
    assert!((5..60).contains(&relaxed), "relaxed = {relaxed}");
    assert!((20..120).contains(&strict), "strict = {strict}");
}
