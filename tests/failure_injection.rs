//! Failure injection for the on-disk index: a freshly written image always
//! validates; corrupting its structural bytes is either *detected* by
//! `DiskSuffixTree::validate` or rejected at open — silent acceptance of a
//! broken tree would be a correctness hazard for every search on top of it.

use oasis::prelude::*;
use oasis::storage::DiskTreeBuilder;

fn build_image(block_size: usize) -> (SequenceDatabase, Vec<u8>) {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    b.push_str("s0", "ACGTACGTTGCAGT").unwrap();
    b.push_str("s1", "GTACCATTTTGGA").unwrap();
    b.push_str("s2", "ACACACACAC").unwrap();
    let db = b.finish();
    let tree = SuffixTree::build(&db);
    let (image, _) = DiskTreeBuilder::with_block_size(block_size).build_image(&tree);
    (db, image)
}

#[test]
fn pristine_image_validates() {
    let (_, image) = build_image(64);
    let disk = DiskSuffixTree::open_image(image, 64, 1 << 20).unwrap();
    disk.validate().expect("fresh image must validate");
}

#[test]
fn generated_workload_image_validates() {
    let workload = generate_protein(&ProteinDbSpec::tiny());
    let tree = SuffixTree::build(&workload.db);
    let (image, _) = DiskTreeBuilder::default().build_image(&tree);
    let disk = DiskSuffixTree::open_image(image, 2048, 1 << 20).unwrap();
    disk.validate().expect("workload image must validate");
}

/// Corrupt one aligned u32 inside the internal-node region and check the
/// damage is caught. Every internal record field participates in a
/// structural invariant, so any in-range flip that changes semantics must
/// be either detected by validate() or harmless (e.g. flipping a byte to
/// the identical value is impossible here since we XOR with a mask).
#[test]
fn corrupting_internal_records_is_detected() {
    let block_size = 64usize;
    let (_, image) = build_image(block_size);
    // Locate the internal region from the header.
    let internal_start =
        u64::from_le_bytes(image[40..48].try_into().unwrap()) as usize * block_size;
    let leaves_start = u64::from_le_bytes(image[48..56].try_into().unwrap()) as usize * block_size;
    let num_internal = u32::from_le_bytes(image[16..20].try_into().unwrap()) as usize;

    let mut detected = 0usize;
    let mut total = 0usize;
    for rec in 0..num_internal {
        for field in 0..4usize {
            let at = internal_start + rec * 16 + field * 4;
            assert!(at + 4 <= leaves_start);
            let mut corrupt = image.clone();
            // Flip a mix of low and high bits to move pointers and depths.
            for b in 0..4 {
                corrupt[at + b] ^= 0xA5;
            }
            total += 1;
            let outcome = std::panic::catch_unwind(|| {
                let disk = DiskSuffixTree::open_image(corrupt, block_size, 1 << 20)?;
                Ok::<_, oasis::storage::layout::LayoutError>(disk.validate())
            });
            match outcome {
                Err(_) => detected += 1,         // panicked inside traversal: caught
                Ok(Err(_)) => detected += 1,     // rejected at open
                Ok(Ok(Err(_))) => detected += 1, // validate() found it
                Ok(Ok(Ok(()))) => {}             // undetected
            }
        }
    }
    // Every single-field corruption must be caught: the fields are depth
    // (breaks monotonicity), witness (breaks range/labels), and the two
    // child pointers (break range or reachability).
    assert_eq!(
        detected, total,
        "{detected}/{total} corruptions detected; silent corruption is a bug"
    );
}

#[test]
fn corrupting_leaf_chain_is_detected() {
    let block_size = 64usize;
    let (_, image) = build_image(block_size);
    let leaves_start = u64::from_le_bytes(image[48..56].try_into().unwrap()) as usize * block_size;
    let text_len = u32::from_le_bytes(image[12..16].try_into().unwrap()) as usize;

    let mut detected = 0usize;
    let mut total = 0usize;
    for pos in 0..text_len {
        let at = leaves_start + pos * 4;
        let original = u32::from_le_bytes(image[at..at + 4].try_into().unwrap());
        if original == u32::MAX {
            // Point a dead entry at itself: only detectable if reachable;
            // skip (dead entries are never followed).
            continue;
        }
        // Redirect a live sibling pointer to create a cycle.
        let mut corrupt = image.clone();
        corrupt[at..at + 4].copy_from_slice(&(pos as u32).to_le_bytes());
        total += 1;
        let disk = DiskSuffixTree::open_image(corrupt, block_size, 1 << 20).unwrap();
        if disk.validate().is_err() {
            detected += 1;
        }
    }
    assert_eq!(detected, total, "leaf-chain cycles must be detected");
}

#[test]
fn truncated_image_rejected_at_open() {
    let (_, image) = build_image(64);
    for keep in [0usize, 63, 64, 128] {
        let mut short = image.clone();
        short.truncate(keep.min(short.len()));
        assert!(
            DiskSuffixTree::open_image(short, 64, 1 << 20).is_err(),
            "truncation to {keep} bytes must be rejected"
        );
    }
}

#[test]
fn header_magic_corruption_rejected() {
    let (_, mut image) = build_image(64);
    image[0] ^= 0xFF;
    assert!(DiskSuffixTree::open_image(image, 64, 1 << 20).is_err());
}
