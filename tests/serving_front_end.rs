//! The serving front end's admission-control contract: a full queue
//! *rejects* new work with backpressure instead of blocking the caller,
//! admitted work is always served exactly once, per-query latency is
//! captured for the tail percentiles, degenerate configurations are
//! rejected at construction, and an [`IndexCatalog`] hot-swaps index
//! generations under live traffic without rejecting, blocking, or
//! corrupting in-flight queries.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use oasis::prelude::*;

/// A test executor whose queries block until the test releases them —
/// making "the worker is busy and the queue is full" a deterministic
/// state instead of a race against real search work.
struct GateExecutor {
    started: mpsc::Sender<String>,
    release: Mutex<mpsc::Receiver<()>>,
}

impl QueryExecutor for GateExecutor {
    fn execute(&self, job: &BatchQuery) -> SearchOutcome {
        self.started.send(job.id.clone()).expect("test listening");
        self.release
            .lock()
            .expect("gate poisoned")
            .recv()
            .expect("test releases every admitted job");
        SearchOutcome {
            hits: Vec::new(),
            stats: SearchStats::default(),
            pool_delta: PoolStatsSnapshot::default(),
        }
    }
}

fn job(id: &str) -> BatchQuery {
    BatchQuery::named(id, vec![0, 1, 2], OasisParams::with_min_score(1))
}

#[test]
fn full_admission_queue_rejects_instead_of_blocking() {
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let serving = ServingEngine::new(
        GateExecutor {
            started: started_tx,
            release: Mutex::new(release_rx),
        },
        ServingConfig {
            workers: 1,
            queue_capacity: 2,
        },
    )
    .expect("valid serving config");

    // First job is picked up by the (single) worker and parks on the gate.
    let a = serving.try_submit(job("a")).expect("a admitted");
    assert_eq!(started_rx.recv().expect("worker started"), "a");
    assert!(a.try_take().is_none(), "a is still executing");

    // Two more fill the bounded queue to capacity…
    let b = serving.try_submit(job("b")).expect("b admitted");
    let c = serving.try_submit(job("c")).expect("c admitted");
    assert_eq!(serving.queue_depth(), 2);

    // …and the next submission is rejected immediately — no blocking.
    let err = serving.try_submit(job("d")).unwrap_err();
    assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
    assert_eq!(serving.stats().rejected, 1);

    // Release the gate: every admitted job completes exactly once.
    for _ in 0..3 {
        release_tx.send(()).expect("worker listening");
    }
    let mut ids: Vec<String> = [a, b, c]
        .into_iter()
        .map(|t| t.wait().expect("admitted work is served").id)
        .collect();
    ids.sort();
    assert_eq!(ids, ["a", "b", "c"]);
    let stats = serving.stats();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.rejected, 1);
    let latency = serving.latency_summary();
    assert_eq!(latency.count, 3);
    assert!(latency.max >= latency.p50);
}

#[test]
fn degenerate_serving_config_is_rejected_at_construction() {
    // Zero workers would strand every admitted query; zero capacity would
    // reject every submission. Both used to construct silently; now they
    // fail with a clear diagnostic before any thread spawns.
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    b.push_str("s0", "AGTACGCCTAG").unwrap();
    let db = Arc::new(b.finish());
    let engine = || {
        let tree = Arc::new(SuffixTree::build(&db));
        OasisEngine::new(tree, db.clone(), Scoring::unit_dna())
    };

    let err = ServingEngine::new(
        engine(),
        ServingConfig {
            workers: 0,
            queue_capacity: 4,
        },
    )
    .err()
    .expect("zero workers rejected");
    assert_eq!(err, ServingConfigError::ZeroWorkers);
    assert!(err.to_string().contains("workers"), "{err}");

    let err = ServingEngine::new(
        engine(),
        ServingConfig {
            workers: 2,
            queue_capacity: 0,
        },
    )
    .err()
    .expect("zero capacity rejected");
    assert_eq!(err, ServingConfigError::ZeroQueueCapacity);
    assert!(err.to_string().contains("queue_capacity"), "{err}");
}

#[test]
fn hot_swap_serves_new_generation_and_drains_old_one() {
    // A query parked inside generation 0 must pin it across a publish;
    // queries submitted after the publish run on generation 1 without
    // waiting for the old one; and the old generation is dropped the
    // moment its last in-flight query completes.
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    enum Gen {
        Gated {
            started: mpsc::Sender<String>,
            release: Mutex<mpsc::Receiver<()>>,
        },
        Instant,
    }
    impl QueryExecutor for Gen {
        fn execute(&self, job: &BatchQuery) -> SearchOutcome {
            if let Gen::Gated { started, release } = self {
                started.send(job.id.clone()).expect("test listening");
                release
                    .lock()
                    .expect("gate poisoned")
                    .recv()
                    .expect("test releases");
            }
            SearchOutcome {
                hits: Vec::new(),
                stats: SearchStats::default(),
                pool_delta: PoolStatsSnapshot::default(),
            }
        }
    }
    let serving = ServingEngine::new(
        IndexCatalog::new(
            "gated-gen0",
            Gen::Gated {
                started: started_tx,
                release: Mutex::new(release_rx),
            },
        ),
        ServingConfig {
            workers: 2,
            queue_capacity: 8,
        },
    )
    .expect("valid serving config");

    // Park one query inside generation 0.
    let parked = serving.try_submit(job("parked")).expect("admitted");
    assert_eq!(started_rx.recv().expect("started"), "parked");

    // Swap generations while it is in flight.
    let new_id = serving.executor().publish("instant-gen1", Gen::Instant);
    assert_eq!(new_id, Ok(1));
    assert_eq!(serving.executor().current_info().label, "instant-gen1");

    // New work is admitted and served by generation 1 immediately — the
    // parked query still holds the other worker, so completion proves the
    // swap neither blocked nor rejected.
    let after = serving.try_submit(job("after-swap")).expect("admitted");
    assert_eq!(after.wait().expect("served").id, "after-swap");

    // Generation 0 is still pinned by the parked query…
    let pinned = serving.executor().retired_in_flight();
    assert_eq!(pinned.len(), 1);
    assert_eq!(pinned[0].label, "gated-gen0");

    // …and is dropped once that query completes.
    release_tx.send(()).expect("worker listening");
    assert_eq!(parked.wait().expect("drained").id, "parked");
    assert!(serving.executor().retired_in_flight().is_empty());
    assert_eq!(serving.stats().rejected, 0);
}

#[test]
fn hot_swap_under_concurrent_traffic_is_lossless_and_correct() {
    // Continuous submissions across repeated generation swaps: nothing is
    // rejected (capacity covers the offered load), nothing blocks, and
    // every result is byte-identical to a reference engine — whichever
    // generation served it.
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, s) in ["AGTACGCCTAG", "TACCG", "GGTAGG", "GATTACA", "TACGTACG"]
        .iter()
        .enumerate()
    {
        b.push_str(format!("s{i}"), s).unwrap();
    }
    let db = Arc::new(b.finish());
    let reference = {
        let tree = Arc::new(SuffixTree::build(&db));
        OasisEngine::new(tree, db.clone(), Scoring::unit_dna())
    };
    let serving = Arc::new(
        ServingEngine::new(
            IndexCatalog::new(
                "gen0",
                ShardedEngine::build(db.clone(), Scoring::unit_dna(), 1),
            ),
            ServingConfig {
                workers: 2,
                queue_capacity: 256,
            },
        )
        .expect("valid serving config"),
    );

    let alpha = Alphabet::dna();
    let texts = ["TACG", "GATT", "GGTAGG", "CC", "TACCG"];
    let submitted: Vec<(String, QueryTicket)> = std::thread::scope(|scope| {
        // Publish fresh generations (different shard counts — results must
        // not change) while the main thread keeps submitting.
        let swapper = {
            let serving = serving.clone();
            let db = db.clone();
            scope.spawn(move || {
                for k in [2usize, 3, 4] {
                    let generation = ShardedEngine::build(db.clone(), Scoring::unit_dna(), k);
                    serving
                        .executor()
                        .publish(format!("{k}-shards"), generation)
                        .expect("publish");
                    std::thread::yield_now();
                }
            })
        };
        let mut tickets = Vec::new();
        for round in 0..20 {
            for t in texts {
                let id = format!("{t}#{round}");
                let ticket = serving
                    .try_submit(BatchQuery::named(
                        id.clone(),
                        alpha.encode_str(t).unwrap(),
                        OasisParams::with_min_score(2),
                    ))
                    .expect("capacity covers the offered load — no rejects");
                tickets.push((t.to_string(), ticket));
            }
        }
        swapper.join().expect("swapper finished");
        tickets
    });

    for (text, ticket) in submitted {
        let served = ticket.wait().expect("admitted work is always served");
        let want = reference.run_one(
            &alpha.encode_str(&text).unwrap(),
            &OasisParams::with_min_score(2),
        );
        assert_eq!(served.outcome.hits, want.hits, "query {text}");
    }
    assert_eq!(serving.stats().rejected, 0, "no backpressure under swaps");
    assert_eq!(serving.stats().served, 100);
    // Once everything drained, no retired generation stays pinned.
    assert!(serving.executor().retired_in_flight().is_empty());
    assert_eq!(serving.executor().generations_published(), 4);
}

#[test]
fn serving_real_engine_matches_direct_execution() {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, s) in ["AGTACGCCTAG", "TACCG", "GGTAGG", "GATTACA"]
        .iter()
        .enumerate()
    {
        b.push_str(format!("s{i}"), s).unwrap();
    }
    let db = Arc::new(b.finish());
    let tree = Arc::new(SuffixTree::build(&db));
    let engine = OasisEngine::new(tree.clone(), db.clone(), Scoring::unit_dna());
    let serving = ServingEngine::new(
        OasisEngine::new(tree, db.clone(), Scoring::unit_dna()),
        ServingConfig {
            workers: 2,
            queue_capacity: 8,
        },
    )
    .expect("valid serving config");
    let alpha = Alphabet::dna();
    let jobs: Vec<BatchQuery> = ["TACG", "GATT", "GGTAGG"]
        .iter()
        .map(|t| {
            BatchQuery::named(
                t.to_string(),
                alpha.encode_str(t).unwrap(),
                OasisParams::with_min_score(2),
            )
        })
        .collect();
    let tickets: Vec<QueryTicket> = jobs
        .iter()
        .map(|j| serving.try_submit(j.clone()).expect("capacity is ample"))
        .collect();
    for (ticket, job) in tickets.into_iter().zip(&jobs) {
        let served = ticket.wait().expect("served");
        let direct = engine.run_batch(std::slice::from_ref(job));
        assert_eq!(served.outcome.hits, direct[0].hits, "query {}", job.id);
        assert!(served.total >= served.service);
    }
    // The sharded engine serves through the same front end.
    let sharded = ServingEngine::new(
        ShardedEngine::build(db, Scoring::unit_dna(), 3),
        ServingConfig {
            workers: 2,
            queue_capacity: 8,
        },
    )
    .expect("valid serving config");
    for job in &jobs {
        let served = sharded
            .try_submit(job.clone())
            .expect("capacity is ample")
            .wait()
            .expect("served");
        let direct = engine.run_batch(std::slice::from_ref(job));
        assert_eq!(served.outcome.hits, direct[0].hits, "sharded {}", job.id);
    }
}
