//! The serving front end's admission-control contract: a full queue
//! *rejects* new work with backpressure instead of blocking the caller,
//! admitted work is always served exactly once, and per-query latency is
//! captured for the tail percentiles.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use oasis::prelude::*;

/// A test executor whose queries block until the test releases them —
/// making "the worker is busy and the queue is full" a deterministic
/// state instead of a race against real search work.
struct GateExecutor {
    started: mpsc::Sender<String>,
    release: Mutex<mpsc::Receiver<()>>,
}

impl QueryExecutor for GateExecutor {
    fn execute(&self, job: &BatchQuery) -> SearchOutcome {
        self.started.send(job.id.clone()).expect("test listening");
        self.release
            .lock()
            .expect("gate poisoned")
            .recv()
            .expect("test releases every admitted job");
        SearchOutcome {
            hits: Vec::new(),
            stats: SearchStats::default(),
            pool_delta: PoolStatsSnapshot::default(),
        }
    }
}

fn job(id: &str) -> BatchQuery {
    BatchQuery::named(id, vec![0, 1, 2], OasisParams::with_min_score(1))
}

#[test]
fn full_admission_queue_rejects_instead_of_blocking() {
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let serving = ServingEngine::new(
        GateExecutor {
            started: started_tx,
            release: Mutex::new(release_rx),
        },
        ServingConfig {
            workers: 1,
            queue_capacity: 2,
        },
    );

    // First job is picked up by the (single) worker and parks on the gate.
    let a = serving.try_submit(job("a")).expect("a admitted");
    assert_eq!(started_rx.recv().expect("worker started"), "a");
    assert!(a.try_take().is_none(), "a is still executing");

    // Two more fill the bounded queue to capacity…
    let b = serving.try_submit(job("b")).expect("b admitted");
    let c = serving.try_submit(job("c")).expect("c admitted");
    assert_eq!(serving.queue_depth(), 2);

    // …and the next submission is rejected immediately — no blocking.
    let err = serving.try_submit(job("d")).unwrap_err();
    assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
    assert_eq!(serving.stats().rejected, 1);

    // Release the gate: every admitted job completes exactly once.
    for _ in 0..3 {
        release_tx.send(()).expect("worker listening");
    }
    let mut ids: Vec<String> = [a, b, c]
        .into_iter()
        .map(|t| t.wait().expect("admitted work is served").id)
        .collect();
    ids.sort();
    assert_eq!(ids, ["a", "b", "c"]);
    let stats = serving.stats();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.rejected, 1);
    let latency = serving.latency_summary();
    assert_eq!(latency.count, 3);
    assert!(latency.max >= latency.p50);
}

#[test]
fn serving_real_engine_matches_direct_execution() {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, s) in ["AGTACGCCTAG", "TACCG", "GGTAGG", "GATTACA"]
        .iter()
        .enumerate()
    {
        b.push_str(format!("s{i}"), s).unwrap();
    }
    let db = Arc::new(b.finish());
    let tree = Arc::new(SuffixTree::build(&db));
    let engine = OasisEngine::new(tree.clone(), db.clone(), Scoring::unit_dna());
    let serving = ServingEngine::new(
        OasisEngine::new(tree, db.clone(), Scoring::unit_dna()),
        ServingConfig {
            workers: 2,
            queue_capacity: 8,
        },
    );
    let alpha = Alphabet::dna();
    let jobs: Vec<BatchQuery> = ["TACG", "GATT", "GGTAGG"]
        .iter()
        .map(|t| {
            BatchQuery::named(
                t.to_string(),
                alpha.encode_str(t).unwrap(),
                OasisParams::with_min_score(2),
            )
        })
        .collect();
    let tickets: Vec<QueryTicket> = jobs
        .iter()
        .map(|j| serving.try_submit(j.clone()).expect("capacity is ample"))
        .collect();
    for (ticket, job) in tickets.into_iter().zip(&jobs) {
        let served = ticket.wait().expect("served");
        let direct = engine.run_batch(std::slice::from_ref(job));
        assert_eq!(served.outcome.hits, direct[0].hits, "query {}", job.id);
        assert!(served.total >= served.service);
    }
    // The sharded engine serves through the same front end.
    let sharded = ServingEngine::new(
        ShardedEngine::build(db, Scoring::unit_dna(), 3),
        ServingConfig {
            workers: 2,
            queue_capacity: 8,
        },
    );
    for job in &jobs {
        let served = sharded
            .try_submit(job.clone())
            .expect("capacity is ample")
            .wait()
            .expect("served");
        let direct = engine.run_batch(std::slice::from_ref(job));
        assert_eq!(served.outcome.hits, direct[0].hits, "sharded {}", job.id);
    }
}
