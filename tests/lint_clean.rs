//! The tree lints clean: `oasis-lint`'s whole rule set — serving-path
//! panic-freedom, lock discipline, protocol/manifest drift, escape
//! justifications, `forbid(unsafe_code)` pins — holds over the
//! workspace's own sources. Any regression turns up here as the exact
//! `file:line: [rule] message` the linter prints.

use std::path::Path;

use oasis::lint::Workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = Workspace::load(root).expect("load the workspace sources");
    assert!(
        !ws.files.is_empty(),
        "the loader found no sources; the clean result would be vacuous"
    );
    let diags = ws.lint();
    let listing: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "oasis-lint found {} problem(s):\n{}",
        diags.len(),
        listing.join("\n")
    );
}
