//! The engine-layer correctness property: running N queries concurrently
//! through `OasisEngine` is *byte-identical* to running each serially
//! through `OasisSearch` — same hits (every field), same order, same
//! statistics — on ≥ 4 worker threads, over both the in-memory and the
//! disk-resident (shared buffer pool!) substrates. This extends the
//! `oasis_equals_sw` exactness property one layer up: engine ≡ serial
//! OASIS ≡ exhaustive Smith-Waterman.
//!
//! The sharded layer extends it once more: partitioning the database into
//! K per-shard indexes and k-way-merging the per-shard online streams is
//! byte-identical to the unsharded engine for every K, serial or
//! threaded — sharded ≡ engine ≡ serial OASIS ≡ S-W.

use std::sync::Arc;

use proptest::prelude::*;

use oasis::prelude::*;

const THREADS: usize = 4;

fn build_db(seqs: &[Vec<u8>]) -> Arc<SequenceDatabase> {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    Arc::new(b.finish())
}

fn jobs_from(queries: &[Vec<u8>], min_score: i32) -> Vec<BatchQuery> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            BatchQuery::named(
                format!("q{i}"),
                q.clone(),
                OasisParams::with_min_score(min_score),
            )
        })
        .collect()
}

/// Serial ground truth: one `OasisSearch` per job against a borrowed tree.
fn serial_reference<T: SuffixTreeAccess + ?Sized>(
    tree: &T,
    db: &SequenceDatabase,
    scoring: &Scoring,
    jobs: &[BatchQuery],
) -> Vec<(Vec<Hit>, SearchStats)> {
    jobs.iter()
        .map(|job| OasisSearch::new(tree, db, &job.query, scoring, &job.params).run())
        .collect()
}

/// Strategy: a database of 1..10 DNA sequences with lengths 1..50.
fn db_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 1..50), 1..10)
}

/// Strategy: a batch of 1..8 queries of length 1..12.
fn batch_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 1..12), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn concurrent_batch_equals_serial_runs(
        seqs in db_strategy(),
        queries in batch_strategy(),
        min in 1i32..6,
    ) {
        let db = build_db(&seqs);
        let tree = Arc::new(SuffixTree::build(&db));
        let scoring = Scoring::unit_dna();
        let jobs = jobs_from(&queries, min);

        let engine =
            OasisEngine::new(tree.clone(), db.clone(), scoring.clone()).with_threads(THREADS);
        let outcomes = engine.run_batch(&jobs);
        let reference = serial_reference(&*tree, &db, &scoring, &jobs);

        prop_assert_eq!(outcomes.len(), reference.len());
        for (out, (hits, stats)) in outcomes.iter().zip(&reference) {
            // Byte-identical: every Hit field, in the same online order,
            // and the exact same search counters.
            prop_assert_eq!(&out.hits, hits);
            prop_assert_eq!(&out.stats, stats);
        }
    }

    #[test]
    fn engine_batch_equals_smith_waterman(
        seqs in db_strategy(),
        queries in batch_strategy(),
        min in 1i32..6,
    ) {
        // The oasis_equals_sw property, lifted to the engine layer.
        let db = build_db(&seqs);
        let tree = Arc::new(SuffixTree::build(&db));
        let scoring = Scoring::unit_dna();
        let jobs = jobs_from(&queries, min);
        let engine =
            OasisEngine::new(tree, db.clone(), scoring.clone()).with_threads(THREADS);
        for (job, out) in jobs.iter().zip(engine.run_batch(&jobs)) {
            let sw = SwScanner::new().scan(&db, &job.query, &scoring, min);
            let mut got: Vec<(SeqId, Score)> =
                out.hits.iter().map(|h| (h.seq, h.score)).collect();
            got.sort_unstable();
            let mut want: Vec<(SeqId, Score)> =
                sw.iter().map(|h| (h.seq, h.hit.score)).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn concurrent_disk_batch_equals_serial_runs(
        seqs in db_strategy(),
        queries in prop::collection::vec(prop::collection::vec(0u8..4, 1..10), 1..6),
        min in 1i32..5,
    ) {
        // The hard case: all THREADS workers share one buffer pool (with a
        // deliberately tiny frame budget, so they fight over frames) while
        // their per-query deltas and results must stay exact.
        let db = build_db(&seqs);
        let mem_tree = SuffixTree::build(&db);
        let (image, _) = DiskTreeBuilder::with_block_size(64).build_image(&mem_tree);
        let disk = Arc::new(
            DiskSuffixTree::open_image(image, 64, 64 * 4).expect("valid image"),
        );
        let scoring = Scoring::unit_dna();
        let jobs = jobs_from(&queries, min);
        let engine =
            OasisEngine::new(disk.clone(), db.clone(), scoring.clone()).with_threads(THREADS);
        let outcomes = engine.run_batch(&jobs);
        // Byte-identical to serial runs over the SAME disk substrate…
        let reference = serial_reference(&*disk, &db, &scoring, &jobs);
        for (out, (hits, stats)) in outcomes.iter().zip(&reference) {
            prop_assert_eq!(&out.hits, hits);
            prop_assert_eq!(&out.stats, stats);
        }
        // …and byte-identical to the in-memory tree: the driver's
        // canonical (score desc, start asc) tie-break depends only on the
        // text and the query, never on the substrate's node enumeration.
        let mem_reference = serial_reference(&mem_tree, &db, &scoring, &jobs);
        for (out, (hits, _)) in outcomes.iter().zip(&mem_reference) {
            prop_assert_eq!(&out.hits, hits);
        }
        // Delta sanity: per-query deltas never exceed the pool's global
        // cumulative counters (which also include open()-time meta reads).
        let global = disk.pool().stats().total();
        let attributed: u64 = outcomes.iter().map(|o| o.pool_delta.total().requests).sum();
        prop_assert!(attributed <= global.requests);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The enhanced-suffix-array backend is a drop-in substrate: an
    /// `OasisEngine` over an `EsaIndex` must serve byte-identical hits
    /// *and statistics* to the suffix-tree engine — serially and on 4
    /// worker threads — and the sharded engine built with the ESA
    /// backend must match the unsharded tree engine for K ∈ {1, 4}.
    /// Together with `concurrent_disk_batch_equals_serial_runs` this
    /// closes the square: tree ≡ disk tree ≡ ESA, memory and disk.
    #[test]
    fn esa_backend_equals_tree_across_threads_and_shards(
        seqs in db_strategy(),
        queries in prop::collection::vec(prop::collection::vec(0u8..4, 1..12), 1..5),
        min in 1i32..6,
    ) {
        let db = build_db(&seqs);
        let tree = Arc::new(SuffixTree::build(&db));
        let esa = Arc::new(EsaIndex::build(&db));
        let scoring = Scoring::unit_dna();
        let jobs = jobs_from(&queries, min);
        let reference = OasisEngine::new(tree, db.clone(), scoring.clone())
            .with_threads(1)
            .run_batch(&jobs);
        for threads in [1usize, THREADS] {
            let outcomes = OasisEngine::new(esa.clone(), db.clone(), scoring.clone())
                .with_threads(threads)
                .run_batch(&jobs);
            prop_assert_eq!(outcomes.len(), reference.len());
            for (out, want) in outcomes.iter().zip(&reference) {
                prop_assert_eq!(&out.hits, &want.hits, "threads={}", threads);
                prop_assert_eq!(&out.stats, &want.stats, "threads={}", threads);
            }
        }
        for k in [1usize, 4] {
            let mut engine = ShardedEngine::build_with_backend(
                db.clone(),
                scoring.clone(),
                k,
                IndexBackend::Esa,
            );
            for threads in [1usize, THREADS] {
                engine = engine.with_threads(threads);
                let sharded = engine.run_batch(&jobs);
                for (s, u) in sharded.iter().zip(&reference) {
                    prop_assert_eq!(&s.hits, &u.hits, "k={} threads={}", k, threads);
                }
            }
        }
    }

    #[test]
    fn sharded_equals_unsharded_for_every_shard_count(
        seqs in db_strategy(),
        queries in prop::collection::vec(prop::collection::vec(0u8..4, 1..12), 1..5),
        min in 1i32..6,
    ) {
        let db = build_db(&seqs);
        let tree = Arc::new(SuffixTree::build(&db));
        let scoring = Scoring::unit_dna();
        let jobs = jobs_from(&queries, min);
        let unsharded = OasisEngine::new(tree, db.clone(), scoring.clone())
            .with_threads(1)
            .run_batch(&jobs);
        for k in [1usize, 2, 3, 7] {
            let mut engine = ShardedEngine::build(db.clone(), scoring.clone(), k);
            for threads in [1usize, THREADS] {
                engine = engine.with_threads(threads);
                let sharded = engine.run_batch(&jobs);
                prop_assert_eq!(sharded.len(), unsharded.len());
                for ((s, u), job) in sharded.iter().zip(&unsharded).zip(&jobs) {
                    // Byte-identical hits: every field, in the same global
                    // online order, whatever the partitioning.
                    prop_assert_eq!(
                        &s.hits, &u.hits,
                        "k={} threads={} query={}", k, threads, &job.id
                    );
                    prop_assert_eq!(s.stats.hits_emitted, u.stats.hits_emitted);
                }
            }
        }
    }
}

#[test]
fn batch_results_are_deterministic_across_runs() {
    let db = build_db(&[
        vec![3, 0, 1, 2, 1, 1, 3, 0, 2],
        vec![3, 0, 1, 1, 2],
        vec![2, 2, 3, 0, 2, 2],
        vec![0, 1, 2, 3, 0, 1, 2, 3],
    ]);
    let tree = Arc::new(SuffixTree::build(&db));
    let scoring = Scoring::unit_dna();
    let queries: Vec<Vec<u8>> = vec![
        vec![3, 0, 1, 2],
        vec![0, 1],
        vec![2, 2, 2],
        vec![1, 0, 3],
        vec![3, 0, 1, 1],
    ];
    let jobs = jobs_from(&queries, 1);
    let engine = OasisEngine::new(tree, db, scoring).with_threads(THREADS);
    let first = engine.run_batch(&jobs);
    for _ in 0..3 {
        let again = engine.run_batch(&jobs);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.stats, b.stats);
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let db = build_db(&[
        vec![0, 1, 0, 1, 0, 1, 0, 1],
        vec![1, 0, 1, 0, 1],
        vec![0, 0, 0, 0, 0, 0],
        vec![2, 3, 2, 3, 2],
    ]);
    let tree = Arc::new(SuffixTree::build(&db));
    let scoring = Scoring::unit_dna();
    let queries: Vec<Vec<u8>> = vec![vec![0, 1, 0], vec![2, 3], vec![0, 0, 0], vec![1, 1]];
    let jobs = jobs_from(&queries, 1);
    let serial = OasisEngine::new(tree.clone(), db.clone(), scoring.clone())
        .with_threads(1)
        .run_batch(&jobs);
    for threads in [2usize, 4, 8] {
        let parallel = OasisEngine::new(tree.clone(), db.clone(), scoring.clone())
            .with_threads(threads)
            .run_batch(&jobs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.hits, b.hits, "threads={threads}");
            assert_eq!(a.stats, b.stats, "threads={threads}");
        }
    }
}
