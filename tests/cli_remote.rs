//! End-to-end CLI coverage of the network path: `oasis serve` on an
//! ephemeral port, `oasis query --remote` byte-identical to the local
//! `oasis search --index`, and `oasis admin` stats/reload/shutdown.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-cli-remote-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn oasis(args: &[&str], dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oasis"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("launch oasis CLI")
}

/// A running `oasis serve` child that is killed on drop if the test did
/// not shut it down gracefully first.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(dir: &PathBuf, extra: &[&str]) -> Server {
    let mut args = vec![
        "serve",
        "--index",
        "idx",
        "--addr",
        "127.0.0.1:0",
        "--matrix",
        "unit",
        "--gap",
        "-1",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_oasis"))
        .args(&args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn oasis serve");
    // The daemon prints `listening on <addr>` once bound; resolve the
    // ephemeral port from that line.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let start = Instant::now();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    break addr.to_string();
                }
            }
            _ => panic!("serve exited before announcing its address"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "serve never announced its address"
        );
    };
    Server { child, addr }
}

#[test]
fn remote_query_is_byte_identical_to_local_search_and_admin_works() {
    let dir = workdir("e2e");
    std::fs::write(
        dir.join("db.fa"),
        ">s0\nAGTACGCCTAG\n>s1\nTACCG\n>s2\nGGTAGG\n>s3\nGATTACA\n",
    )
    .unwrap();
    std::fs::write(dir.join("q.fa"), ">q0\nTACG\n>q1\nGATT\n").unwrap();
    let out = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "idx",
            "--dna",
            "--shards",
            "2",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(out.status.success(), "index build failed: {out:?}");
    // A second artifact for the reload hop (same db, single shard).
    let out = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "idx1",
            "--dna",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(out.status.success(), "index build (idx1) failed: {out:?}");

    let server = spawn_server(&dir, &[]);
    let addr = server.addr.clone();

    // Local reference output over the very same artifact.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx",
            "TACG",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(local.status.success(), "local search failed: {local:?}");

    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--min-score", "2"],
        &dir,
    );
    assert!(remote.status.success(), "remote query failed: {remote:?}");
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "remote stdout must be byte-identical to the local search"
    );
    assert!(
        !remote.stdout.is_empty(),
        "the diff above compared something"
    );

    // Batch mode parity.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx",
            "--queries",
            "q.fa",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    let remote = oasis(
        &[
            "query",
            "--remote",
            &addr,
            "--queries",
            "q.fa",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "remote batch stdout must be byte-identical to the local batch"
    );

    // E-value rule parity (server-side Equation 3 vs local conversion).
    let local = oasis(
        &[
            "search", "--index", "idx", "TACG", "--matrix", "unit", "--gap", "-1", "--evalue",
            "1.0",
        ],
        &dir,
    );
    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--evalue", "1.0"],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout)
    );

    // Admin: stats answers — index-centric rows plus the front-door
    // cache/connection gauges, one aligned table.
    let stats = oasis(&["admin", "--remote", &addr, "stats"], &dir);
    assert!(stats.status.success(), "stats failed: {stats:?}");
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("generation:   0"), "{text}");
    assert!(text.contains("served:"), "{text}");
    assert!(text.contains("cache:"), "{text}");
    assert!(text.contains("connections:"), "{text}");

    // Admin: metrics scrapes the front door. The repeated remote TACG
    // query above makes the cache hit count nonzero.
    let metrics = oasis(&["admin", "--remote", &addr, "metrics"], &dir);
    assert!(metrics.status.success(), "metrics failed: {metrics:?}");
    let text = String::from_utf8_lossy(&metrics.stdout);
    assert!(text.contains("cache:"), "{text}");
    assert!(text.contains("pipelined:"), "{text}");
    assert!(text.contains("uptime:"), "{text}");
    assert!(text.contains("gen 0"), "{text}");

    let reload = oasis(&["admin", "--remote", &addr, "reload", "idx1"], &dir);
    assert!(reload.status.success(), "reload failed: {reload:?}");
    assert!(
        String::from_utf8_lossy(&reload.stdout).contains("generation 1"),
        "{reload:?}"
    );
    // Post-reload queries still serve identical results.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx1",
            "TACG",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--min-score", "2"],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout)
    );

    // Graceful shutdown: the daemon exits 0.
    let shutdown = oasis(&["admin", "--remote", &addr, "shutdown"], &dir);
    assert!(shutdown.status.success(), "shutdown failed: {shutdown:?}");
    let mut server = server;
    let start = Instant::now();
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "serve did not exit after admin shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "serve exited with {status}");
}

#[test]
fn query_without_remote_and_bad_addr_fail_cleanly() {
    let dir = workdir("errs");
    let out = oasis(&["query", "TACG"], &dir);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--remote"),
        "{out:?}"
    );
    // Nothing listens on this port: a clean connection error, no panic.
    let out = oasis(
        &[
            "query",
            "--remote",
            "127.0.0.1:1",
            "TACG",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "{out:?}"
    );
}
