//! End-to-end CLI coverage of the network path: `oasis serve` on an
//! ephemeral port, `oasis query --remote` byte-identical to the local
//! `oasis search --index`, and `oasis admin` stats/reload/shutdown.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-cli-remote-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn oasis(args: &[&str], dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oasis"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("launch oasis CLI")
}

/// A running `oasis serve` child that is killed on drop if the test did
/// not shut it down gracefully first.
struct Server {
    child: Child,
    addr: String,
    /// The `--metrics-addr` scrape endpoint, when one was requested.
    metrics_addr: Option<String>,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(dir: &PathBuf, extra: &[&str]) -> Server {
    let mut args = vec![
        "serve",
        "--index",
        "idx",
        "--addr",
        "127.0.0.1:0",
        "--matrix",
        "unit",
        "--gap",
        "-1",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_oasis"))
        .args(&args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn oasis serve");
    // The daemon prints `listening on <addr>` once bound (followed by
    // `metrics on <addr>` when a scrape endpoint was requested); resolve
    // the ephemeral ports from those lines.
    let want_metrics = extra.contains(&"--metrics-addr");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let start = Instant::now();
    let mut addr = None;
    let mut metrics_addr = None;
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("listening on ") {
                    addr = Some(a.to_string());
                }
                if let Some(m) = line.strip_prefix("metrics on ") {
                    metrics_addr = Some(m.to_string());
                }
                if let Some(a) = &addr {
                    if !want_metrics || metrics_addr.is_some() {
                        break a.clone();
                    }
                }
            }
            _ => panic!("serve exited before announcing its address"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "serve never announced its address"
        );
    };
    Server {
        child,
        addr,
        metrics_addr,
    }
}

#[test]
fn remote_query_is_byte_identical_to_local_search_and_admin_works() {
    let dir = workdir("e2e");
    std::fs::write(
        dir.join("db.fa"),
        ">s0\nAGTACGCCTAG\n>s1\nTACCG\n>s2\nGGTAGG\n>s3\nGATTACA\n",
    )
    .unwrap();
    std::fs::write(dir.join("q.fa"), ">q0\nTACG\n>q1\nGATT\n").unwrap();
    let out = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "idx",
            "--dna",
            "--shards",
            "2",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(out.status.success(), "index build failed: {out:?}");
    // A second artifact for the reload hop (same db, single shard).
    let out = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "idx1",
            "--dna",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(out.status.success(), "index build (idx1) failed: {out:?}");

    let server = spawn_server(&dir, &[]);
    let addr = server.addr.clone();

    // Local reference output over the very same artifact.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx",
            "TACG",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(local.status.success(), "local search failed: {local:?}");

    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--min-score", "2"],
        &dir,
    );
    assert!(remote.status.success(), "remote query failed: {remote:?}");
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "remote stdout must be byte-identical to the local search"
    );
    assert!(
        !remote.stdout.is_empty(),
        "the diff above compared something"
    );

    // Batch mode parity.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx",
            "--queries",
            "q.fa",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    let remote = oasis(
        &[
            "query",
            "--remote",
            &addr,
            "--queries",
            "q.fa",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout),
        "remote batch stdout must be byte-identical to the local batch"
    );

    // E-value rule parity (server-side Equation 3 vs local conversion).
    let local = oasis(
        &[
            "search", "--index", "idx", "TACG", "--matrix", "unit", "--gap", "-1", "--evalue",
            "1.0",
        ],
        &dir,
    );
    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--evalue", "1.0"],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout)
    );

    // Admin: stats answers — index-centric rows plus the front-door
    // cache/connection gauges, one aligned table.
    let stats = oasis(&["admin", "--remote", &addr, "stats"], &dir);
    assert!(stats.status.success(), "stats failed: {stats:?}");
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("generation:   0"), "{text}");
    assert!(text.contains("served:"), "{text}");
    assert!(text.contains("cache:"), "{text}");
    assert!(text.contains("connections:"), "{text}");

    // Admin: metrics scrapes the front door. The repeated remote TACG
    // query above makes the cache hit count nonzero.
    let metrics = oasis(&["admin", "--remote", &addr, "metrics"], &dir);
    assert!(metrics.status.success(), "metrics failed: {metrics:?}");
    let text = String::from_utf8_lossy(&metrics.stdout);
    assert!(text.contains("cache:"), "{text}");
    assert!(text.contains("pipelined:"), "{text}");
    assert!(text.contains("uptime:"), "{text}");
    assert!(text.contains("gen 0"), "{text}");

    let reload = oasis(&["admin", "--remote", &addr, "reload", "idx1"], &dir);
    assert!(reload.status.success(), "reload failed: {reload:?}");
    assert!(
        String::from_utf8_lossy(&reload.stdout).contains("generation 1"),
        "{reload:?}"
    );
    // Post-reload queries still serve identical results.
    let local = oasis(
        &[
            "search",
            "--index",
            "idx1",
            "TACG",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "2",
        ],
        &dir,
    );
    let remote = oasis(
        &["query", "--remote", &addr, "TACG", "--min-score", "2"],
        &dir,
    );
    assert!(local.status.success() && remote.status.success());
    assert_eq!(
        String::from_utf8_lossy(&local.stdout),
        String::from_utf8_lossy(&remote.stdout)
    );

    // Graceful shutdown: the daemon exits 0.
    let shutdown = oasis(&["admin", "--remote", &addr, "shutdown"], &dir);
    assert!(shutdown.status.success(), "shutdown failed: {shutdown:?}");
    let mut server = server;
    let start = Instant::now();
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "serve did not exit after admin shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "serve exited with {status}");
}

#[test]
fn prom_exposition_metrics_endpoint_and_slowlog_work_end_to_end() {
    let dir = workdir("obs");
    std::fs::write(
        dir.join("db.fa"),
        ">s0\nAGTACGCCTAG\n>s1\nTACCG\n>s2\nGGTAGG\n>s3\nGATTACA\n",
    )
    .unwrap();
    let out = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "idx",
            "--dna",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(out.status.success(), "index build failed: {out:?}");

    // `--slow-ms 0` logs every traced query; `--metrics-addr 127.0.0.1:0`
    // opens the plain-HTTP scrape endpoint on an ephemeral port.
    let server = spawn_server(&dir, &["--metrics-addr", "127.0.0.1:0", "--slow-ms", "0"]);
    let addr = server.addr.clone();
    let maddr = server
        .metrics_addr
        .clone()
        .expect("serve announced its metrics endpoint");

    // One executed search and one repeat (a result-cache hit) — both
    // must land in the slow log, and both count toward the histograms.
    for _ in 0..2 {
        let remote = oasis(
            &["query", "--remote", &addr, "TACG", "--min-score", "2"],
            &dir,
        );
        assert!(remote.status.success(), "remote query failed: {remote:?}");
    }

    // Prometheus exposition through the admin CLI: the pinned family
    // names and the histogram-backed quantile series must be present.
    let prom = oasis(&["admin", "--remote", &addr, "metrics", "--prom"], &dir);
    assert!(prom.status.success(), "metrics --prom failed: {prom:?}");
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(
        text.contains("# TYPE oasis_queries_served_total counter"),
        "{text}"
    );
    assert!(text.contains("\noasis_queries_served_total 1\n"), "{text}");
    assert!(
        text.contains("oasis_query_latency_us{quantile=\"0.99\"}"),
        "{text}"
    );
    for stage in ["queue_wait", "execute", "resolve", "frame_flush"] {
        assert!(
            text.contains(&format!(
                "oasis_stage_latency_us{{stage=\"{stage}\",quantile=\"0.5\"}}"
            )),
            "missing {stage} series in:\n{text}"
        );
    }
    assert!(text.contains("oasis_cache_hits_total 1"), "{text}");

    // The same exposition over plain HTTP — what an actual scraper sees.
    let scrape = {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(&maddr).expect("connect metrics endpoint");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: oasis\r\n\r\n")
            .expect("write scrape request");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read scrape");
        body
    };
    assert!(scrape.starts_with("HTTP/1.0 200 OK\r\n"), "{scrape}");
    assert!(
        scrape.contains("Content-Type: text/plain; version=0.0.4"),
        "{scrape}"
    );
    assert!(
        scrape.contains("\noasis_queries_served_total 1\n"),
        "{scrape}"
    );
    assert!(
        scrape.contains("oasis_stage_latency_us{stage=\"execute\""),
        "{scrape}"
    );

    // The slow log holds both queries: the executed one with the full
    // four-stage trace and its work counters, the repeat flagged as a
    // cache hit.
    let slowlog = oasis(&["admin", "--remote", &addr, "slowlog"], &dir);
    assert!(slowlog.status.success(), "slowlog failed: {slowlog:?}");
    let text = String::from_utf8_lossy(&slowlog.stdout);
    assert!(text.contains("slow-query log:"), "{text}");
    for stage in ["queue_wait", "execute", "resolve", "frame_flush"] {
        assert!(text.contains(stage), "missing {stage} span in:\n{text}");
    }
    assert!(text.contains("[cache hit]"), "{text}");
    assert!(text.contains("expanded"), "{text}");

    let shutdown = oasis(&["admin", "--remote", &addr, "shutdown"], &dir);
    assert!(shutdown.status.success(), "shutdown failed: {shutdown:?}");
}

#[test]
fn query_without_remote_and_bad_addr_fail_cleanly() {
    let dir = workdir("errs");
    let out = oasis(&["query", "TACG"], &dir);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--remote"),
        "{out:?}"
    );
    // Nothing listens on this port: a clean connection error, no panic.
    let out = oasis(
        &[
            "query",
            "--remote",
            "127.0.0.1:1",
            "TACG",
            "--min-score",
            "2",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "{out:?}"
    );
}
