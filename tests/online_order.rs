//! The online property (§1, §4.6): hits stream out in non-increasing score
//! order, and consuming only the top k is consistent with the full run —
//! so a user can "abort the query after seeing the top few matches".

use proptest::prelude::*;

use oasis::prelude::*;

fn build_db(seqs: &[Vec<u8>]) -> SequenceDatabase {
    let mut b = DatabaseBuilder::new(Alphabet::dna());
    for (i, codes) in seqs.iter().enumerate() {
        b.push(Sequence::from_codes(format!("s{i}"), codes.clone()))
            .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scores_non_increasing(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..50), 1..10),
        query in prop::collection::vec(0u8..4, 1..12),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let hits: Vec<Hit> = OasisSearch::new(&tree, &db, &query, &scoring, &params).collect();
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        // Each sequence appears at most once (paper: single strongest
        // alignment per database sequence).
        let mut seqs_seen: Vec<SeqId> = hits.iter().map(|h| h.seq).collect();
        seqs_seen.sort_unstable();
        let before = seqs_seen.len();
        seqs_seen.dedup();
        prop_assert_eq!(before, seqs_seen.len());
    }

    #[test]
    fn top_k_prefix_is_stable(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..50), 1..10),
        query in prop::collection::vec(0u8..4, 1..12),
        k in 1usize..6,
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let all: Vec<Hit> = OasisSearch::new(&tree, &db, &query, &scoring, &params).collect();
        let top: Vec<Hit> = OasisSearch::new(&tree, &db, &query, &scoring, &params)
            .take(k)
            .collect();
        let k = k.min(all.len());
        prop_assert_eq!(&all[..k], &top[..k]);
    }

    #[test]
    fn first_hit_is_global_max(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..50), 1..10),
        query in prop::collection::vec(0u8..4, 1..12),
    ) {
        let db = build_db(&seqs);
        let tree = SuffixTree::build(&db);
        let scoring = Scoring::unit_dna();
        let params = OasisParams::with_min_score(1);
        let first = OasisSearch::new(&tree, &db, &query, &scoring, &params).next();
        // Compare against the global S-W maximum over all sequences.
        let sw = SwScanner::new().scan(&db, &query, &scoring, 1);
        match (first, sw.first()) {
            (Some(hit), Some(best)) => prop_assert_eq!(hit.score, best.hit.score),
            (None, None) => {}
            (got, want) => prop_assert!(false, "mismatch: {:?} vs {:?}", got, want),
        }
    }
}

#[test]
fn streaming_matches_run() {
    let db = build_db(&[
        vec![3, 0, 1, 2, 1, 1, 3, 0, 2],
        vec![3, 0, 1, 1, 2],
        vec![2, 2, 3, 0, 2, 2],
    ]);
    let tree = SuffixTree::build(&db);
    let scoring = Scoring::unit_dna();
    let params = OasisParams::with_min_score(1);
    let query = vec![3, 0, 1, 2];
    let streamed: Vec<Hit> = OasisSearch::new(&tree, &db, &query, &scoring, &params).collect();
    let (ran, stats) = OasisSearch::new(&tree, &db, &query, &scoring, &params).run();
    assert_eq!(streamed, ran);
    assert_eq!(stats.hits_emitted as usize, ran.len());
}
