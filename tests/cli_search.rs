//! End-to-end CLI coverage of the serving path: `--shards` produces
//! byte-identical output to the disk index, per-query pool accounting is
//! reported (on the drained and the `--top` early-exit path), and
//! degenerate inputs fail cleanly instead of panicking.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

fn oasis(args: &[&str], dir: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_oasis"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("launch oasis CLI")
}

fn setup(tag: &str) -> PathBuf {
    let dir = workdir(tag);
    std::fs::write(
        dir.join("db.fa"),
        ">s0\nAGTACGCCTAG\n>s1\nTACCG\n>s2\nGGTAGG\n>s3\nGATTACA\n",
    )
    .unwrap();
    std::fs::write(dir.join("q.fa"), ">q0\nTACG\n>q1\nGATT\n").unwrap();
    let out = oasis(
        &["index", "db.fa", "idx", "--dna", "--block-size", "64"],
        &dir,
    );
    assert!(out.status.success(), "index failed: {out:?}");
    dir
}

const COMMON: &[&str] = &[
    "--dna",
    "--matrix",
    "unit",
    "--gap",
    "-1",
    "--min-score",
    "2",
];

fn search(dir: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec!["search", "db.fa", "idx"];
    args.extend_from_slice(extra);
    args.extend_from_slice(COMMON);
    oasis(&args, dir)
}

#[test]
fn sharded_search_is_byte_identical_to_disk_search() {
    let dir = setup("shards");
    let disk = search(&dir, &["TACG"]);
    assert!(disk.status.success(), "disk search failed: {disk:?}");
    for shards in ["1", "2", "3"] {
        let sharded = search(&dir, &["TACG", "--shards", shards]);
        assert!(
            sharded.status.success(),
            "sharded search failed: {sharded:?}"
        );
        assert_eq!(
            String::from_utf8_lossy(&disk.stdout),
            String::from_utf8_lossy(&sharded.stdout),
            "--shards {shards} must not change results"
        );
    }
    // Batch mode too.
    let disk = search(&dir, &["--queries", "q.fa"]);
    let sharded = search(&dir, &["--queries", "q.fa", "--shards", "2"]);
    assert!(disk.status.success() && sharded.status.success());
    assert_eq!(
        String::from_utf8_lossy(&disk.stdout),
        String::from_utf8_lossy(&sharded.stdout)
    );
}

#[test]
fn pool_hit_ratio_reported_on_drained_and_top_k_paths() {
    let dir = setup("hitratio");
    for extra in [&["TACG"][..], &["TACG", "--top", "1"][..]] {
        let out = search(&dir, extra);
        assert!(out.status.success(), "search failed: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("hit ratio"),
            "per-query pool accounting missing ({extra:?}):\n{stderr}"
        );
    }
    // Batch mode reports the folded per-query deltas.
    let out = search(&dir, &["--queries", "q.fa"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("hit ratio"), "batch accounting:\n{stderr}");
    // `--top 1` prints exactly one hit before the early exit.
    let top = search(&dir, &["TACG", "--top", "1"]);
    assert_eq!(String::from_utf8_lossy(&top.stdout).lines().count(), 1);
}

#[test]
fn pool_mb_warns_when_ignored_by_in_memory_backends() {
    let dir = setup("poolmb");
    // Legacy --shards path: in-memory, --pool-mb does nothing → warn.
    let sharded = search(&dir, &["TACG", "--shards", "2", "--pool-mb", "8"]);
    assert!(
        sharded.status.success(),
        "sharded search failed: {sharded:?}"
    );
    let stderr = String::from_utf8_lossy(&sharded.stderr);
    assert!(
        stderr.contains("warning: --pool-mb is ignored"),
        "expected a --pool-mb warning, got:\n{stderr}"
    );
    // Without --pool-mb there is nothing to warn about.
    let quiet = search(&dir, &["TACG", "--shards", "2"]);
    assert!(
        !String::from_utf8_lossy(&quiet.stderr).contains("warning: --pool-mb"),
        "spurious warning: {quiet:?}"
    );
    // The disk path genuinely uses the pool: no warning there either.
    let disk = search(&dir, &["TACG", "--pool-mb", "8"]);
    assert!(disk.status.success());
    assert!(
        !String::from_utf8_lossy(&disk.stderr).contains("warning: --pool-mb"),
        "disk-resident search must not warn: {disk:?}"
    );

    // Artifact paths: multi-shard (in-memory) warns, single-shard
    // (disk-resident through the pool) does not.
    for (out, shards) in [("arti2", "2"), ("arti1", "1")] {
        let built = oasis(
            &[
                "index",
                "build",
                "db.fa",
                "--out",
                out,
                "--dna",
                "--shards",
                shards,
                "--block-size",
                "64",
            ],
            &dir,
        );
        assert!(built.status.success(), "index build failed: {built:?}");
    }
    let mut args = vec!["search", "--index", "arti2", "TACG", "--pool-mb", "8"];
    args.extend_from_slice(COMMON);
    let multi = oasis(&args, &dir);
    assert!(multi.status.success(), "artifact search failed: {multi:?}");
    assert!(
        String::from_utf8_lossy(&multi.stderr).contains("warning: --pool-mb is ignored"),
        "multi-shard artifact must warn: {multi:?}"
    );
    let mut args = vec!["search", "--index", "arti1", "TACG", "--pool-mb", "8"];
    args.extend_from_slice(COMMON);
    let single = oasis(&args, &dir);
    assert!(
        single.status.success(),
        "artifact search failed: {single:?}"
    );
    assert!(
        !String::from_utf8_lossy(&single.stderr).contains("warning: --pool-mb"),
        "single-shard artifact must not warn: {single:?}"
    );
}

#[test]
fn index_inspect_prints_the_manifest_without_loading_trees() {
    let dir = setup("inspect");
    let built = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "arti",
            "--dna",
            "--shards",
            "2",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(built.status.success(), "index build failed: {built:?}");
    let out = oasis(&["index", "inspect", "arti"], &dir);
    assert!(out.status.success(), "inspect failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "version:       2",
        "block size:    64",
        "sequences:     4",
        "shards:        2",
        "index bytes:",
        "bytes/symbol",
        "shard 0000",
        "shard 0001",
        "tree-image",
        "checksum",
        "db-",
    ] {
        assert!(
            needle.is_empty() || stdout.contains(needle),
            "missing {needle:?} in:\n{stdout}"
        );
    }
    // The shard boundary table tiles the database.
    assert!(stdout.contains("seqs 0..="), "{stdout}");
    // A packed-ESA artifact reports its backend kind per shard.
    let built = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "esa-arti",
            "--dna",
            "--shards",
            "2",
            "--block-size",
            "64",
            "--backend",
            "esa",
        ],
        &dir,
    );
    assert!(built.status.success(), "esa index build failed: {built:?}");
    let out = oasis(&["index", "inspect", "esa-arti"], &dir);
    assert!(out.status.success(), "esa inspect failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("packed-esa"), "{stdout}");
    assert!(!stdout.contains("tree-image"), "{stdout}");
    // Inspecting a non-artifact directory fails cleanly.
    let out = oasis(&["index", "inspect", "."], &dir);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "{out:?}"
    );
}

#[test]
fn index_inspect_json_is_machine_readable_and_tracks_the_live_state() {
    let dir = setup("inspect-json");
    let built = oasis(
        &[
            "index",
            "build",
            "db.fa",
            "--out",
            "arti",
            "--dna",
            "--shards",
            "2",
            "--block-size",
            "64",
        ],
        &dir,
    );
    assert!(built.status.success(), "index build failed: {built:?}");

    // A fresh artifact: no lineage, no WAL, every manifest fact present.
    let out = oasis(&["index", "inspect", "arti", "--json"], &dir);
    assert!(out.status.success(), "inspect --json failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = stdout.trim();
    assert!(doc.starts_with('{') && doc.ends_with('}'), "{doc}");
    for needle in [
        "\"artifact\": \"arti\"",
        "\"version\": 2",
        "\"block_size\": 64",
        "\"sequences\": 4",
        "\"text_length\":",
        "\"database\": {\"file\":",
        "\"shards\": [",
        "\"seq_lo\": 0",
        "\"kind\": \"tree-image\"",
        "\"checksum\": \"",
        "\"lineage\": null",
        "\"wal\": null",
    ] {
        assert!(doc.contains(needle), "missing {needle:?} in:\n{doc}");
    }
    // Machine output only — none of the human-format lines leak in.
    assert!(!doc.contains("version:"), "{doc}");

    // After an append the document reports the pending WAL records.
    std::fs::write(dir.join("add.fa"), ">a0\nTTGACA\n").unwrap();
    let appended = oasis(
        &[
            "index", "append", "add.fa", "--index", "arti", "--matrix", "unit",
        ],
        &dir,
    );
    assert!(appended.status.success(), "append failed: {appended:?}");
    let out = oasis(&["index", "inspect", "arti", "--json"], &dir);
    assert!(out.status.success(), "inspect after append: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"lineage\": null",
        "\"wal\": {\"bytes\":",
        "\"pending_seqs\": 1",
        "\"torn_tail\": false",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    // After a compacting append the lineage lands and the log drains.
    std::fs::write(dir.join("add2.fa"), ">a1\nCGCGTT\n").unwrap();
    let compacted = oasis(
        &[
            "index",
            "append",
            "add2.fa",
            "--index",
            "arti",
            "--matrix",
            "unit",
            "--compact",
        ],
        &dir,
    );
    assert!(compacted.status.success(), "compact failed: {compacted:?}");
    let out = oasis(&["index", "inspect", "arti", "--json"], &dir);
    assert!(out.status.success(), "inspect after compact: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"version\": 3",
        "\"sequences\": 6",
        "\"lineage\": {\"compactions\": 1, \"appended_seqs\": 2, \"folded_through\": 1}",
        "\"pending_seqs\": 0",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn esa_backend_serves_byte_identical_search_results() {
    let dir = setup("esa-backend");
    for (out, backend) in [("tree-arti", "tree"), ("esa-arti", "esa")] {
        let built = oasis(
            &[
                "index",
                "build",
                "db.fa",
                "--out",
                out,
                "--dna",
                "--shards",
                "2",
                "--block-size",
                "64",
                "--backend",
                backend,
            ],
            &dir,
        );
        assert!(
            built.status.success(),
            "{backend} index build failed: {built:?}"
        );
    }
    for query in ["TACG", "ACGT", "GGG"] {
        let direct = search(&dir, &[query]);
        assert!(direct.status.success(), "direct search failed: {direct:?}");
        let mut outputs = Vec::new();
        for index in ["tree-arti", "esa-arti"] {
            let mut args = vec!["search", "--index", index, query];
            args.extend_from_slice(COMMON);
            let out = oasis(&args, &dir);
            assert!(out.status.success(), "{index} search failed: {out:?}");
            outputs.push(String::from_utf8_lossy(&out.stdout).into_owned());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{query}: tree and esa artifacts must serve identical hits"
        );
        assert_eq!(
            String::from_utf8_lossy(&direct.stdout),
            outputs[1],
            "{query}: esa artifact must match the direct in-memory search"
        );
    }
}

#[test]
fn degenerate_inputs_fail_cleanly() {
    let dir = setup("degenerate");
    let empty = search(&dir, &[""]);
    assert!(!empty.status.success());
    let stderr = String::from_utf8_lossy(&empty.stderr);
    assert!(stderr.contains("query is empty"), "got: {stderr}");

    let zero_shards = search(&dir, &["TACG", "--shards", "0"]);
    assert!(!zero_shards.status.success());
    assert!(
        String::from_utf8_lossy(&zero_shards.stderr).contains("--shards"),
        "got: {}",
        String::from_utf8_lossy(&zero_shards.stderr)
    );

    let out = oasis(
        &[
            "search",
            "db.fa",
            "idx",
            "TACG",
            "--dna",
            "--matrix",
            "unit",
            "--gap",
            "-1",
            "--min-score",
            "0",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--min-score must be at least 1"),
        "a non-positive threshold must be a clean error, not a panic"
    );
}
